"""Tests for the relational operators (selection, projection, sort, group-by, joins)."""

import numpy as np
import pytest

from repro.dataset.schema import Column, DataType, Schema
from repro.dataset.table import Table
from repro.db.aggregates import AggregateFunction, AggregateSpec
from repro.db.expressions import col
from repro.db.query import (
    QueryBuilder,
    from_table,
    full_outer_join,
    group_by,
    group_labels,
    inner_join,
    order_by,
)
from repro.errors import QueryError


class TestQueryBuilder:
    def test_where_filters(self, small_numeric_table):
        result = from_table(small_numeric_table).where(col("a") > 2).execute()
        assert result.num_rows == 3

    def test_conjunctive_where(self, small_numeric_table):
        result = (
            from_table(small_numeric_table)
            .where(col("a") > 1)
            .where(col("a") < 5)
            .execute()
        )
        assert result.column("a").tolist() == [2.0, 3.0, 4.0]

    def test_select_projects(self, small_numeric_table):
        result = from_table(small_numeric_table).select("b", "a").execute()
        assert result.schema.names == ("b", "a")

    def test_order_by_descending(self, small_numeric_table):
        result = from_table(small_numeric_table).order_by("a", descending=True).execute()
        assert result.column("a").tolist() == [5.0, 4.0, 3.0, 2.0, 1.0]

    def test_limit(self, small_numeric_table):
        result = from_table(small_numeric_table).order_by("a").limit(2).execute()
        assert result.num_rows == 2

    def test_negative_limit_rejected(self, small_numeric_table):
        with pytest.raises(QueryError):
            from_table(small_numeric_table).limit(-1)

    def test_matching_indices(self, small_numeric_table):
        indices = from_table(small_numeric_table).where(col("c") == 1).matching_indices()
        assert indices.tolist() == [0, 2, 4]

    def test_combined_pipeline(self, recipes):
        result = (
            from_table(recipes)
            .where(col("gluten") == "free")
            .order_by("saturated_fat")
            .limit(5)
            .select("name", "saturated_fat")
            .execute()
        )
        assert result.num_rows == 5
        fats = result.column("saturated_fat")
        assert all(fats[i] <= fats[i + 1] for i in range(len(fats) - 1))


class TestOrderBy:
    def test_multi_key_sort(self):
        table = Table.from_dict({"k": [1, 2, 1, 2], "v": [9.0, 1.0, 3.0, 7.0]})
        result = order_by(table, [("k", False), ("v", True)])
        assert result.column("k").tolist() == [1, 1, 2, 2]
        assert result.column("v").tolist() == [9.0, 3.0, 7.0, 1.0]

    def test_string_sort_with_none(self, mixed_table):
        result = order_by(mixed_table, [("category", False)])
        # None sorts as empty string, i.e. first.
        assert result.column("category")[0] is None

    def test_empty_keys_returns_same(self, small_numeric_table):
        assert order_by(small_numeric_table, []) is small_numeric_table


class TestGroupBy:
    def test_basic_aggregates(self):
        table = Table.from_dict({"k": [1, 1, 2], "v": [10.0, 20.0, 5.0]})
        result = group_by(
            table,
            ["k"],
            [
                AggregateSpec(AggregateFunction.COUNT, alias="n"),
                AggregateSpec(AggregateFunction.SUM, "v", alias="total"),
                AggregateSpec(AggregateFunction.AVG, "v", alias="mean"),
            ],
        )
        assert result.num_rows == 2
        rows = {row["k"]: row for row in result.rows()}
        assert rows[1]["n"] == 2.0 and rows[1]["total"] == 30.0 and rows[1]["mean"] == 15.0
        assert rows[2]["n"] == 1.0 and rows[2]["total"] == 5.0

    def test_requires_keys(self, small_numeric_table):
        with pytest.raises(QueryError):
            group_by(small_numeric_table, [], [])

    def test_group_by_string_key(self, mixed_table):
        result = group_by(
            mixed_table, ["category"], [AggregateSpec(AggregateFunction.COUNT, alias="n")]
        )
        counts = {row["category"]: row["n"] for row in result.rows()}
        assert counts["x"] == 2.0
        assert counts[None] == 1.0

    def test_group_labels(self, small_numeric_table):
        labels, distinct = group_labels(small_numeric_table, ["c"])
        assert labels.tolist() == [0, 1, 0, 1, 0]
        assert distinct.num_rows == 2


class TestJoins:
    @pytest.fixture
    def left(self) -> Table:
        return Table.from_dict({"id": [1, 2, 3], "x": [10.0, 20.0, 30.0]})

    @pytest.fixture
    def right(self) -> Table:
        return Table.from_dict({"key": [2, 3, 3, 4], "y": [200.0, 300.0, 301.0, 400.0]})

    def test_inner_join(self, left, right):
        result = inner_join(left, right, [("id", "key")])
        assert result.num_rows == 3
        pairs = sorted(zip(result.column("id").tolist(), [float(v) for v in result.column("y")]))
        assert pairs == [(2, 200.0), (3, 300.0), (3, 301.0)]

    def test_inner_join_no_matches(self, left):
        other = Table.from_dict({"key": [99], "y": [1.0]})
        result = inner_join(left, other, [("id", "key")])
        assert result.num_rows == 0

    def test_join_requires_keys(self, left, right):
        with pytest.raises(QueryError):
            inner_join(left, right, [])

    def test_full_outer_join_pads_with_nulls(self, left, right):
        result = full_outer_join(left, right, [("id", "key")])
        # 3 matched rows + 1 left-only (id=1) + 1 right-only (key=4).
        assert result.num_rows == 5
        # Float NULLs are represented as NaN (the library's convention).
        assert result.null_mask("y").sum() == 1
        assert result.null_mask("x").sum() == 1

    def test_full_outer_join_column_clash_suffix(self):
        left = Table.from_dict({"id": [1], "v": [1.0]})
        right = Table.from_dict({"id2": [1], "v": [2.0]})
        result = inner_join(left, right, [("id", "id2")], suffix="_r")
        assert "v" in result.schema and "v_r" in result.schema

    def test_prejoined_style_null_projection(self, left, right):
        joined = full_outer_join(left, right, [("id", "key")])
        clean = joined.drop_nulls(["x", "y"])
        assert clean.num_rows == 3
