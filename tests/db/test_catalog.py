"""Tests for the database catalog."""

import pytest

from repro.dataset.table import Table
from repro.db.catalog import Database
from repro.errors import CatalogError
from repro.partition.quadtree import QuadTreePartitioner


@pytest.fixture
def database(small_numeric_table) -> Database:
    db = Database("testdb")
    db.create_table(small_numeric_table, name="numbers")
    return db


class TestTables:
    def test_create_and_fetch(self, database, small_numeric_table):
        fetched = database.table("numbers")
        assert fetched.num_rows == small_numeric_table.num_rows

    def test_duplicate_rejected(self, database, small_numeric_table):
        with pytest.raises(CatalogError):
            database.create_table(small_numeric_table, name="numbers")

    def test_replace_allowed(self, database, small_numeric_table):
        database.create_table(small_numeric_table.head(2), name="numbers", replace=True)
        assert database.table("numbers").num_rows == 2

    def test_missing_table(self, database):
        with pytest.raises(CatalogError, match="not found"):
            database.table("nope")

    def test_drop(self, database):
        database.drop_table("numbers")
        assert "numbers" not in database
        with pytest.raises(CatalogError):
            database.drop_table("numbers")

    def test_rename_on_register(self, database, mixed_table):
        registered = database.create_table(mixed_table, name="other")
        assert registered.name == "other"
        assert database.table("other").name == "other"

    def test_iteration_and_len(self, database, mixed_table):
        database.create_table(mixed_table)
        assert len(database) == 2
        assert sorted(t.name for t in database) == ["mixed", "numbers"]
        assert database.table_names() == ["mixed", "numbers"]


class TestPartitionings:
    def test_register_and_fetch(self, database, small_numeric_table):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(
            small_numeric_table, ["a", "b"]
        )
        database.register_partitioning("numbers", partitioning)
        assert database.has_partitioning("numbers")
        assert database.partitioning("numbers").num_groups == partitioning.num_groups

    def test_labels(self, database, small_numeric_table):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(small_numeric_table, ["a"])
        database.register_partitioning("numbers", partitioning, label="coarse")
        assert database.partitioning_labels("numbers") == ["coarse"]
        with pytest.raises(CatalogError):
            database.partitioning("numbers", "missing")

    def test_register_for_missing_table(self, database, small_numeric_table):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(small_numeric_table, ["a"])
        with pytest.raises(CatalogError):
            database.register_partitioning("ghost", partitioning)

    def test_drop_table_drops_partitionings(self, database, small_numeric_table):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(small_numeric_table, ["a"])
        database.register_partitioning("numbers", partitioning)
        database.drop_table("numbers")
        assert not database.has_partitioning("numbers")


class TestPersistence:
    def test_save_and_load(self, database, mixed_table, tmp_path):
        database.create_table(mixed_table)
        database.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db", name="loaded")
        assert sorted(loaded.table_names()) == ["mixed", "numbers"]
        assert loaded.table("mixed").num_rows == mixed_table.num_rows

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(CatalogError):
            Database.load(tmp_path / "does-not-exist")


class TestVersionedUpdates:
    @pytest.fixture
    def partitioned_db(self):
        from repro.workloads.galaxy import galaxy_table

        table = galaxy_table(400, seed=5)
        db = Database("dynamic")
        db.create_table(table)
        partitioning = QuadTreePartitioner(size_threshold=50).partition(
            table, ["petroMag_r", "redshift"]
        )
        db.register_partitioning("galaxy", partitioning)
        return db, table

    def test_maintain_policy_carries_partitionings(self, partitioned_db):
        db, table = partitioned_db
        delta = table.make_delta(insert=table.head(30))
        result = db.update_table("galaxy", delta)
        assert result.table.version == 1
        assert db.table("galaxy").num_rows == 430
        assert "default" in result.maintained
        assert not result.stale_labels
        assert not db.is_partitioning_stale("galaxy")
        assert db.partitioning_version("galaxy") == 1
        maintained = db.partitioning("galaxy")
        assert maintained.table is db.table("galaxy")
        assert maintained.satisfies_size_threshold(50)

    def test_stale_policy_leaves_partitioning_behind(self, partitioned_db):
        db, table = partitioned_db
        delta = table.make_delta(delete=[0, 1, 2])
        result = db.update_table("galaxy", delta, policy="stale")
        assert result.stale_labels == ["default"]
        assert not result.maintained
        assert db.is_partitioning_stale("galaxy")
        assert db.partitioning_version("galaxy") == 0
        assert db.table("galaxy").version == 1

    def test_database_level_policy_default(self):
        from repro.workloads.galaxy import galaxy_table

        table = galaxy_table(100, seed=5)
        db = Database("lazy", maintenance_policy="stale")
        db.create_table(table)
        partitioning = QuadTreePartitioner(size_threshold=30).partition(
            table, ["petroMag_r"]
        )
        db.register_partitioning("galaxy", partitioning)
        db.update_table("galaxy", table.make_delta(delete=[0]))
        assert db.is_partitioning_stale("galaxy")

    def test_unknown_policy_rejected(self, partitioned_db):
        db, table = partitioned_db
        with pytest.raises(CatalogError, match="policy"):
            db.update_table("galaxy", table.make_delta(delete=[0]), policy="yolo")
        with pytest.raises(CatalogError, match="policy"):
            Database(maintenance_policy="yolo")

    def test_update_missing_table(self, partitioned_db):
        db, table = partitioned_db
        with pytest.raises(CatalogError):
            db.update_table("ghost", table.make_delta(delete=[0]))

    def test_every_label_followed(self, partitioned_db):
        db, table = partitioned_db
        coarse = QuadTreePartitioner(size_threshold=120).partition(
            table, ["petroMag_r"]
        )
        db.register_partitioning("galaxy", coarse, label="coarse")
        result = db.update_table("galaxy", table.make_delta(insert=table.head(10)))
        assert sorted(result.maintained) == ["coarse", "default"]
        assert db.partitioning_version("galaxy", "coarse") == 1


class TestPartitioningPersistence:
    def test_save_load_round_trips_partitionings(self, database, small_numeric_table, tmp_path):
        import numpy as np

        fine = QuadTreePartitioner(size_threshold=2).partition(small_numeric_table, ["a", "b"])
        coarse = QuadTreePartitioner(size_threshold=5).partition(small_numeric_table, ["a"])
        database.register_partitioning("numbers", fine)
        database.register_partitioning("numbers", coarse, label="coarse")
        database.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db")
        assert loaded.partitioning_labels("numbers") == ["coarse", "default"]
        for label, original in (("default", fine), ("coarse", coarse)):
            restored = loaded.partitioning("numbers", label)
            assert np.array_equal(restored.group_ids, original.group_ids)
            assert restored.stats == original.stats
            assert restored.version == original.version
            assert restored.table is loaded.table("numbers")

    def test_round_trip_preserves_maintained_versions(self, tmp_path):
        from repro.workloads.galaxy import galaxy_table

        table = galaxy_table(200, seed=8)
        db = Database()
        db.create_table(table)
        db.register_partitioning(
            "galaxy",
            QuadTreePartitioner(size_threshold=40).partition(table, ["petroMag_r"]),
        )
        db.update_table("galaxy", db.table("galaxy").make_delta(insert=table.head(20)))
        db.update_table("galaxy", db.table("galaxy").make_delta(delete=[3]))
        assert db.table("galaxy").version == 2
        db.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db")
        assert loaded.table("galaxy").version == 2
        assert loaded.partitioning_version("galaxy") == 2
        assert not loaded.is_partitioning_stale("galaxy")
        restored = loaded.partitioning("galaxy")
        assert restored.maintenance.deltas_applied == 2
        assert restored.maintenance.rows_inserted == 20
        assert restored.maintenance.rows_deleted == 1

    def test_stale_partitionings_are_not_persisted(self, tmp_path):
        from repro.workloads.galaxy import galaxy_table

        table = galaxy_table(200, seed=8)
        db = Database()
        db.create_table(table)
        db.register_partitioning(
            "galaxy",
            QuadTreePartitioner(size_threshold=40).partition(table, ["petroMag_r"]),
        )
        db.save(tmp_path / "db")
        # Going stale invalidates the partitioning; a re-save must drop it
        # (its base table version no longer exists to restore it against).
        db.update_table("galaxy", db.table("galaxy").make_delta(delete=[3]), policy="stale")
        assert db.is_partitioning_stale("galaxy")
        skipped = db.save(tmp_path / "db")
        assert skipped == [("galaxy", "default")]
        loaded = Database.load(tmp_path / "db")
        assert loaded.table("galaxy").version == 1
        assert not loaded.has_partitioning("galaxy")

    def test_tables_without_partitionings_still_load(self, database, tmp_path):
        database.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db")
        assert loaded.table_names() == ["numbers"]
        assert not loaded.has_partitioning("numbers")

    def test_replace_table_drops_partitionings(self, database, small_numeric_table, tmp_path):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(
            small_numeric_table, ["a", "b"]
        )
        database.register_partitioning("numbers", partitioning)
        # Out-of-band replacement (same version, different rows) must not
        # leave a partitioning behind that no longer matches the table.
        database.create_table(small_numeric_table.head(3), name="numbers", replace=True)
        assert not database.has_partitioning("numbers")
        database.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db")
        assert loaded.table("numbers").num_rows == 3


class TestStaleThenMaintain:
    def test_already_stale_partitioning_survives_later_maintain_updates(self):
        from repro.workloads.galaxy import galaxy_table

        table = galaxy_table(300, seed=5)
        db = Database()
        db.create_table(table)
        db.register_partitioning(
            "galaxy",
            QuadTreePartitioner(size_threshold=40).partition(table, ["petroMag_r"]),
        )
        # Go stale once, then update again with the default 'maintain' policy:
        # the stale partitioning cannot be caught up and must be skipped (and
        # reported), never crash the update mid-way.
        db.update_table("galaxy", db.table("galaxy").make_delta(delete=[0]), policy="stale")
        result = db.update_table("galaxy", db.table("galaxy").make_delta(delete=[1]))
        assert result.table.version == 2
        assert db.table("galaxy").version == 2
        assert result.stale_labels == ["default"]
        assert not result.maintained
        assert db.partitioning_version("galaxy") == 0
        assert db.is_partitioning_stale("galaxy")


class TestUpdateAtomicity:
    def test_failed_maintenance_leaves_catalog_unchanged(self):
        from repro.workloads.galaxy import galaxy_table

        class BoomMaintainer:
            def maintain(self, partitioning, new_table, delta):
                raise RuntimeError("maintenance exploded")

        table = galaxy_table(200, seed=5)
        db = Database(maintainer=BoomMaintainer())
        db.create_table(table)
        partitioning = QuadTreePartitioner(size_threshold=40).partition(table, ["petroMag_r"])
        db.register_partitioning("galaxy", partitioning)
        delta = table.make_delta(delete=[0])
        with pytest.raises(RuntimeError, match="exploded"):
            db.update_table("galaxy", delta)
        # Nothing committed: same table version, same partitioning, retryable.
        assert db.table("galaxy").version == 0
        assert db.table("galaxy").num_rows == 200
        assert db.partitioning("galaxy") is partitioning
        from repro.partition.maintenance import PartitionMaintainer

        db.maintainer = PartitionMaintainer()
        result = db.update_table("galaxy", delta)
        assert result.table.version == 1
        assert db.partitioning_version("galaxy") == 1

    def test_resave_removes_dropped_table_artifacts(self, database, small_numeric_table, tmp_path):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(
            small_numeric_table, ["a"]
        )
        database.register_partitioning("numbers", partitioning)
        database.save(tmp_path / "db")
        database.drop_table("numbers")
        database.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db")
        assert "numbers" not in loaded
        assert not loaded.has_partitioning("numbers")

    def test_empty_string_policy_rejected(self, database, small_numeric_table):
        delta = small_numeric_table.make_delta(delete=[0])
        with pytest.raises(CatalogError, match="policy"):
            database.update_table("numbers", delta, policy="")

    def test_save_leaves_unrelated_files_alone(self, database, tmp_path):
        directory = tmp_path / "db"
        directory.mkdir()
        foreign = directory / "my_embeddings.npz"
        foreign.write_bytes(b"not a table")
        database.save(directory)
        database.drop_table("numbers")
        database.save(directory)
        # Only this catalog's own artifacts are cleaned up.
        assert foreign.exists()
        assert not (directory / "numbers.npz").exists()

    def test_two_catalogs_sharing_a_directory_do_not_clobber(self, tmp_path):
        a = Database("alpha_cat")
        a.create_table(Table.from_dict({"x": [1.0, 2.0]}, name="alpha"))
        b = Database("beta_cat")
        b.create_table(Table.from_dict({"y": [3.0]}, name="beta"))
        directory = tmp_path / "shared"
        a.save(directory)
        b.save(directory)
        assert (directory / "alpha.npz").exists()
        assert (directory / "beta.npz").exists()
        # Each catalog's cleanup stays scoped to its own manifest entry.
        a.drop_table("alpha")
        a.save(directory)
        assert not (directory / "alpha.npz").exists()
        assert (directory / "beta.npz").exists()

    def test_load_restores_maintenance_policy(self, tmp_path):
        db = Database("lazy", maintenance_policy="stale")
        db.create_table(Table.from_dict({"x": [1.0, 2.0]}, name="t"))
        db.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db", name="lazy")
        assert loaded.maintenance_policy == "stale"
        other = Database.load(tmp_path / "db", name="unknown_catalog")
        assert other.maintenance_policy == "maintain"

    def test_load_scopes_to_manifest_entry(self, tmp_path):
        directory = tmp_path / "shared"
        a = Database("alpha_cat")
        a.create_table(Table.from_dict({"x": [1.0]}, name="alpha"))
        b = Database("beta_cat")
        b.create_table(Table.from_dict({"y": [2.0]}, name="beta"))
        a.save(directory)
        b.save(directory)
        loaded_a = Database.load(directory, name="alpha_cat")
        assert loaded_a.table_names() == ["alpha"]
        loaded_b = Database.load(directory, name="beta_cat")
        assert loaded_b.table_names() == ["beta"]
        # No manifest entry -> legacy behavior, everything loads.
        loaded_all = Database.load(directory, name="unlisted")
        assert loaded_all.table_names() == ["alpha", "beta"]

    def test_load_skips_orphaned_partitioning_directories(self, database, tmp_path):
        directory = tmp_path / "db"
        database.save(directory)
        orphan = directory / "ghost.partitionings" / "default"
        orphan.mkdir(parents=True)
        loaded = Database.load(directory)
        assert loaded.table_names() == ["numbers"]
