"""Tests for the database catalog."""

import pytest

from repro.dataset.table import Table
from repro.db.catalog import Database
from repro.errors import CatalogError
from repro.partition.quadtree import QuadTreePartitioner


@pytest.fixture
def database(small_numeric_table) -> Database:
    db = Database("testdb")
    db.create_table(small_numeric_table, name="numbers")
    return db


class TestTables:
    def test_create_and_fetch(self, database, small_numeric_table):
        fetched = database.table("numbers")
        assert fetched.num_rows == small_numeric_table.num_rows

    def test_duplicate_rejected(self, database, small_numeric_table):
        with pytest.raises(CatalogError):
            database.create_table(small_numeric_table, name="numbers")

    def test_replace_allowed(self, database, small_numeric_table):
        database.create_table(small_numeric_table.head(2), name="numbers", replace=True)
        assert database.table("numbers").num_rows == 2

    def test_missing_table(self, database):
        with pytest.raises(CatalogError, match="not found"):
            database.table("nope")

    def test_drop(self, database):
        database.drop_table("numbers")
        assert "numbers" not in database
        with pytest.raises(CatalogError):
            database.drop_table("numbers")

    def test_rename_on_register(self, database, mixed_table):
        registered = database.create_table(mixed_table, name="other")
        assert registered.name == "other"
        assert database.table("other").name == "other"

    def test_iteration_and_len(self, database, mixed_table):
        database.create_table(mixed_table)
        assert len(database) == 2
        assert sorted(t.name for t in database) == ["mixed", "numbers"]
        assert database.table_names() == ["mixed", "numbers"]


class TestPartitionings:
    def test_register_and_fetch(self, database, small_numeric_table):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(
            small_numeric_table, ["a", "b"]
        )
        database.register_partitioning("numbers", partitioning)
        assert database.has_partitioning("numbers")
        assert database.partitioning("numbers").num_groups == partitioning.num_groups

    def test_labels(self, database, small_numeric_table):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(small_numeric_table, ["a"])
        database.register_partitioning("numbers", partitioning, label="coarse")
        assert database.partitioning_labels("numbers") == ["coarse"]
        with pytest.raises(CatalogError):
            database.partitioning("numbers", "missing")

    def test_register_for_missing_table(self, database, small_numeric_table):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(small_numeric_table, ["a"])
        with pytest.raises(CatalogError):
            database.register_partitioning("ghost", partitioning)

    def test_drop_table_drops_partitionings(self, database, small_numeric_table):
        partitioning = QuadTreePartitioner(size_threshold=2).partition(small_numeric_table, ["a"])
        database.register_partitioning("numbers", partitioning)
        database.drop_table("numbers")
        assert not database.has_partitioning("numbers")


class TestPersistence:
    def test_save_and_load(self, database, mixed_table, tmp_path):
        database.create_table(mixed_table)
        database.save(tmp_path / "db")
        loaded = Database.load(tmp_path / "db", name="loaded")
        assert sorted(loaded.table_names()) == ["mixed", "numbers"]
        assert loaded.table("mixed").num_rows == mixed_table.num_rows

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(CatalogError):
            Database.load(tmp_path / "does-not-exist")
