"""Fault-injection harness for the write-ahead log's storage seam.

:class:`CrashStorage` implements :class:`~repro.db.wal.LogStorage` with the
same durable/buffered split as a POSIX file behind a page cache, plus *named
crash points* planned per append.  A planned crash raises
:class:`SimulatedCrash` at the chosen moment of the chosen append; whatever
the plan made durable up to that instant is exactly what a real crash would
have left on disk.  Tests then recover from those bytes alone
(:func:`recovered_wal`) and assert the catalog lands on the last committed
version — the proof layer behind every durability claim in
``docs/durability.md``.

Crash-point semantics (the WAL calls ``append(frame)`` then ``sync()`` for
each commit):

=======================  ======================================================
``pre-write``            Process dies before any byte of the frame is written.
                         Durable log: unchanged.
``mid-record``           A torn write: a strict prefix of the frame reaches
                         the durable log, then the process dies.  Replay must
                         detect and truncate the tear.
``post-write-pre-fsync`` The full frame is written to the page cache
                         (buffered) but the process dies before ``fsync``;
                         the cached bytes are lost.  Durable log: unchanged.
``post-commit``          ``fsync`` returns — the commit point has passed —
                         and *then* the process dies.  Durable log: contains
                         the frame; recovery must land on this commit.
=======================  ======================================================
"""

from __future__ import annotations

from repro.db.wal import LogStorage, MemoryLogStorage, WriteAheadLog

#: Every named crash point, in commit-path order.
CRASH_POINTS = ("pre-write", "mid-record", "post-write-pre-fsync", "post-commit")

#: Crash points at which the in-flight commit is lost (recovery lands on the
#: previous commit); ``post-commit`` is the one where it survives.
LOSING_POINTS = ("pre-write", "mid-record", "post-write-pre-fsync")


class SimulatedCrash(Exception):
    """The process died at a planned crash point."""


class CrashStorage(LogStorage):
    """Log storage that kills the process at a planned point of a planned append.

    Args:
        initial: Durable bytes the "disk" starts with.

    Plan crashes with :meth:`plan_crash` keyed by *append index* — the 0-based
    ordinal of the ``append`` call, which (the WAL writing one frame per
    commit) is also the ordinal of the commit.  :attr:`append_count` exposes
    how many appends have been attempted, so a test can run a setup phase,
    read the counter, and plan crashes relative to it.
    """

    def __init__(self, initial: bytes = b""):
        self.durable = bytes(initial)
        self.buffered = b""
        self.append_count = 0
        self._plan: dict[int, str] = {}
        self._pending_sync_crash: str | None = None

    def plan_crash(self, append_index: int, point: str) -> None:
        """Crash at ``point`` during the ``append_index``-th append."""
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r} (expected one of {CRASH_POINTS})")
        self._plan[append_index] = point

    # -- LogStorage ----------------------------------------------------------

    def read(self) -> bytes:
        return self.durable

    def append(self, data: bytes) -> None:
        index = self.append_count
        self.append_count += 1
        point = self._plan.get(index)
        if point == "pre-write":
            raise SimulatedCrash(f"pre-write crash at append {index}")
        if point == "mid-record":
            # A torn write: some strict prefix of the frame reached the disk.
            # Half the frame cuts inside the pickled payload; the header's
            # length/CRC then fail verification on replay.
            self.durable += data[: max(1, len(data) // 2)]
            raise SimulatedCrash(f"mid-record crash at append {index}")
        self.buffered += data
        if point in ("post-write-pre-fsync", "post-commit"):
            self._pending_sync_crash = point

    def sync(self) -> None:
        point, self._pending_sync_crash = self._pending_sync_crash, None
        if point == "post-write-pre-fsync":
            # The page cache dies with the process: buffered bytes never
            # reach the durable log.
            self.buffered = b""
            raise SimulatedCrash("post-write-pre-fsync crash")
        self.durable += self.buffered
        self.buffered = b""
        if point == "post-commit":
            raise SimulatedCrash("post-commit crash")

    def reset(self, data: bytes = b"") -> None:
        self.durable = bytes(data)
        self.buffered = b""
        self._pending_sync_crash = None


def recovered_wal(storage: CrashStorage) -> WriteAheadLog:
    """Reopen the crashed storage's *durable* bytes, as a restart would.

    Only ``storage.durable`` carries over — buffered (unsynced) bytes died
    with the process.  Opening the log truncates any torn tail.
    """
    return WriteAheadLog(MemoryLogStorage(storage.durable))
