"""Tests for the vectorised expression language."""

import numpy as np
import pytest

from repro.db.expressions import (
    ArithmeticOperator,
    BinaryOp,
    ColumnRef,
    Comparison,
    ComparisonOperator,
    InList,
    Literal,
    LogicalOp,
    LogicalOperator,
    Not,
    col,
    lit,
)
from repro.errors import ExpressionError


class TestColumnRefAndLiteral:
    def test_column_ref_evaluate(self, small_numeric_table):
        values = col("a").evaluate(small_numeric_table)
        assert values.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_literal_broadcast(self, small_numeric_table):
        values = lit(7.0).evaluate(small_numeric_table)
        assert values.tolist() == [7.0] * 5

    def test_string_literal_broadcast(self, small_numeric_table):
        values = lit("x").evaluate(small_numeric_table)
        assert list(values) == ["x"] * 5

    def test_literal_cannot_wrap_expression(self):
        with pytest.raises(ExpressionError):
            Literal(col("a"))

    def test_referenced_columns(self):
        assert col("a").referenced_columns() == {"a"}
        assert lit(1).referenced_columns() == set()


class TestArithmetic:
    def test_addition(self, small_numeric_table):
        values = (col("a") + col("b")).evaluate(small_numeric_table)
        assert values.tolist() == [11.0, 22.0, 33.0, 44.0, 55.0]

    def test_subtraction_and_scalar(self, small_numeric_table):
        values = (col("b") - 5).evaluate(small_numeric_table)
        assert values.tolist() == [5.0, 15.0, 25.0, 35.0, 45.0]

    def test_multiplication(self, small_numeric_table):
        values = (col("a") * 2).evaluate(small_numeric_table)
        assert values.tolist() == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_division(self, small_numeric_table):
        values = (col("b") / col("a")).evaluate(small_numeric_table)
        assert values.tolist() == [10.0] * 5

    def test_reflected_operators(self, small_numeric_table):
        assert (1 + col("a")).evaluate(small_numeric_table).tolist() == [2.0, 3.0, 4.0, 5.0, 6.0]
        assert (10 - col("a")).evaluate(small_numeric_table).tolist() == [9.0, 8.0, 7.0, 6.0, 5.0]
        assert (2 * col("a")).evaluate(small_numeric_table)[0] == 2.0
        assert (10 / col("a")).evaluate(small_numeric_table)[1] == 5.0

    def test_negation(self, small_numeric_table):
        values = (-col("a")).evaluate(small_numeric_table)
        assert values.tolist() == [-1.0, -2.0, -3.0, -4.0, -5.0]

    def test_referenced_columns_combined(self):
        expression = (col("a") + col("b")) * col("c")
        assert expression.referenced_columns() == {"a", "b", "c"}


class TestComparisons:
    def test_numeric_comparisons(self, small_numeric_table):
        assert (col("a") > 3).evaluate(small_numeric_table).tolist() == [False, False, False, True, True]
        assert (col("a") >= 3).evaluate(small_numeric_table).tolist() == [False, False, True, True, True]
        assert (col("a") < 2).evaluate(small_numeric_table).tolist() == [True, False, False, False, False]
        assert (col("a") <= 2).evaluate(small_numeric_table).tolist() == [True, True, False, False, False]

    def test_equality_on_strings(self, mixed_table):
        mask = (col("name") == "beta").evaluate(mixed_table)
        assert mask.tolist() == [False, True, False, False]

    def test_inequality_on_strings(self, mixed_table):
        mask = (col("name") != "beta").evaluate(mixed_table)
        assert mask.tolist() == [True, False, True, True]

    def test_comparison_between_columns(self, small_numeric_table):
        mask = (col("b") > col("a") * 10).evaluate(small_numeric_table)
        assert mask.tolist() == [False] * 5

    def test_operator_flip(self):
        assert ComparisonOperator.LT.flip() is ComparisonOperator.GT
        assert ComparisonOperator.GE.flip() is ComparisonOperator.LE
        assert ComparisonOperator.EQ.flip() is ComparisonOperator.EQ


class TestBooleanLogic:
    def test_and(self, small_numeric_table):
        mask = ((col("a") > 1) & (col("a") < 5)).evaluate(small_numeric_table)
        assert mask.tolist() == [False, True, True, True, False]

    def test_or(self, small_numeric_table):
        mask = ((col("a") == 1) | (col("a") == 5)).evaluate(small_numeric_table)
        assert mask.tolist() == [True, False, False, False, True]

    def test_not(self, small_numeric_table):
        mask = (~(col("a") > 3)).evaluate(small_numeric_table)
        assert mask.tolist() == [True, True, True, False, False]

    def test_logical_requires_two_operands(self):
        with pytest.raises(ExpressionError):
            LogicalOp(LogicalOperator.AND, [col("a") > 1])

    def test_nested_expression_columns(self):
        expression = ((col("a") > 1) & (col("b") < 2)) | (col("c") == 3)
        assert expression.referenced_columns() == {"a", "b", "c"}


class TestConvenience:
    def test_is_between(self, small_numeric_table):
        mask = col("a").is_between(2, 4).evaluate(small_numeric_table)
        assert mask.tolist() == [False, True, True, True, False]

    def test_isin(self, mixed_table):
        mask = col("name").isin(["alpha", "delta"]).evaluate(mixed_table)
        assert mask.tolist() == [True, False, False, True]

    def test_isin_numeric(self, small_numeric_table):
        mask = col("a").isin([1.0, 5.0]).evaluate(small_numeric_table)
        assert mask.tolist() == [True, False, False, False, True]

    def test_repr_is_readable(self):
        expression = (col("a") + 1) >= 2
        text = repr(expression)
        assert "a" in text and ">=" in text
