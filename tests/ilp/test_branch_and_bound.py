"""Tests for the branch-and-bound ILP solver.

Correctness is checked against brute-force enumeration on small instances,
including a hypothesis property test over random 0/1 knapsack problems, plus
targeted tests for statuses, limits and configuration options.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.branch_and_bound import (
    BranchAndBoundSolver,
    BranchingRule,
    NodeSelection,
    SolverLimits,
)
from repro.ilp.lp_backend import LpBackend
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.status import SolverStatus


def knapsack_model(values, weights, capacity) -> IlpModel:
    model = IlpModel("knapsack")
    for i in range(len(values)):
        model.add_variable(f"x{i}", 0, 1)
    model.add_constraint({i: float(w) for i, w in enumerate(weights)}, ConstraintSense.LE, capacity)
    model.set_objective(ObjectiveSense.MAXIMIZE, {i: float(v) for i, v in enumerate(values)})
    return model


def brute_force_knapsack(values, weights, capacity) -> float:
    best = 0.0
    for selection in itertools.product([0, 1], repeat=len(values)):
        weight = sum(w * s for w, s in zip(weights, selection))
        if weight <= capacity:
            best = max(best, sum(v * s for v, s in zip(values, selection)))
    return best


class TestCorrectness:
    def test_knapsack_optimum(self, fast_solver):
        model = knapsack_model([10, 13, 7, 8, 2], [5, 6, 4, 3, 1], 10)
        solution = fast_solver.solve(model)
        assert solution.status is SolverStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(23.0)
        assert model.check_feasible(solution.values)

    def test_minimisation(self, fast_solver):
        # Cover demand of 5 units with items of size 3 and 2, minimising cost.
        model = IlpModel()
        model.add_variable("threes", 0, None)
        model.add_variable("twos", 0, None)
        model.add_constraint({0: 3.0, 1: 2.0}, ConstraintSense.GE, 5)
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 4.0, 1: 3.0})
        solution = fast_solver.solve(model)
        assert solution.status is SolverStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(7.0)  # one of each.

    def test_equality_constraint(self, fast_solver):
        model = IlpModel()
        for i in range(4):
            model.add_variable(f"x{i}", 0, 1)
        model.add_constraint({i: 1.0 for i in range(4)}, ConstraintSense.EQ, 2)
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 5.0, 1: 1.0, 2: 3.0, 3: 2.0})
        solution = fast_solver.solve(model)
        assert solution.objective_value == pytest.approx(3.0)
        assert solution.integral_values().sum() == 2

    def test_infeasible_model(self, fast_solver):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 2)
        assert fast_solver.solve(model).status is SolverStatus.INFEASIBLE

    def test_integer_infeasible_but_lp_feasible(self, fast_solver):
        # 2x = 3 has an LP solution (x = 1.5) but no integer solution.
        model = IlpModel()
        model.add_variable("x", 0, 5)
        model.add_constraint({0: 2.0}, ConstraintSense.EQ, 3)
        assert fast_solver.solve(model).status is SolverStatus.INFEASIBLE

    def test_unbounded_model(self, fast_solver):
        model = IlpModel()
        model.add_variable("x", 0, None)
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 1.0})
        assert fast_solver.solve(model).status is SolverStatus.UNBOUNDED

    def test_empty_model(self, fast_solver):
        solution = fast_solver.solve(IlpModel())
        assert solution.status is SolverStatus.OPTIMAL
        assert solution.objective_value == 0.0

    def test_feasibility_problem_without_objective(self, fast_solver):
        model = IlpModel()
        model.add_variable("x", 0, 3)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 2)
        solution = fast_solver.solve(model)
        assert solution.status is SolverStatus.OPTIMAL
        assert model.check_feasible(solution.values)

    def test_mixed_integer_continuous(self, fast_solver):
        model = IlpModel()
        model.add_variable("x", 0, 10, is_integer=True)
        model.add_variable("y", 0, 10, is_integer=False)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.LE, 5.5)
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 2.0, 1: 1.0})
        solution = fast_solver.solve(model)
        # x should take the largest integer (5), y the remaining 0.5.
        assert solution.values[0] == pytest.approx(5.0)
        assert solution.values[1] == pytest.approx(0.5, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=7),
        weights_seed=st.integers(min_value=0, max_value=10_000),
        capacity_fraction=st.floats(min_value=0.2, max_value=0.9),
    )
    def test_random_knapsacks_match_brute_force(self, values, weights_seed, capacity_fraction):
        rng = np.random.default_rng(weights_seed)
        weights = rng.integers(1, 15, len(values)).tolist()
        capacity = max(1, int(capacity_fraction * sum(weights)))
        model = knapsack_model(values, weights, capacity)
        solver = BranchAndBoundSolver(limits=SolverLimits(relative_gap=1e-9))
        solution = solver.solve(model)
        assert solution.status is SolverStatus.OPTIMAL
        assert solution.objective_value == pytest.approx(
            brute_force_knapsack(values, weights, capacity)
        )
        assert model.check_feasible(solution.values)


class TestConfigurations:
    @pytest.mark.parametrize("branching", list(BranchingRule))
    @pytest.mark.parametrize("selection", list(NodeSelection))
    def test_all_strategies_reach_the_optimum(self, branching, selection):
        model = knapsack_model([6, 5, 4, 3, 2, 1], [4, 3, 3, 2, 2, 1], 8)
        solver = BranchAndBoundSolver(
            branching=branching,
            node_selection=selection,
            limits=SolverLimits(relative_gap=1e-9),
        )
        solution = solver.solve(model)
        assert solution.objective_value == pytest.approx(
            brute_force_knapsack([6, 5, 4, 3, 2, 1], [4, 3, 3, 2, 2, 1], 8)
        )

    def test_simplex_backend_gives_same_answer(self):
        model = knapsack_model([10, 13, 7, 8, 2], [5, 6, 4, 3, 1], 10)
        solver = BranchAndBoundSolver(lp_backend=LpBackend.SIMPLEX, limits=SolverLimits(relative_gap=1e-9))
        assert solver.solve(model).objective_value == pytest.approx(23.0)

    def test_rounding_heuristic_can_be_disabled(self):
        model = knapsack_model([10, 13, 7, 8, 2], [5, 6, 4, 3, 1], 10)
        solver = BranchAndBoundSolver(enable_rounding_heuristic=False, limits=SolverLimits(relative_gap=1e-9))
        assert solver.solve(model).objective_value == pytest.approx(23.0)


class TestLimits:
    def test_capacity_limit_on_variables(self):
        model = knapsack_model([1] * 20, [1] * 20, 10)
        solver = BranchAndBoundSolver(limits=SolverLimits(max_variables=10))
        solution = solver.solve(model)
        assert solution.status is SolverStatus.CAPACITY_EXCEEDED
        assert not solution.has_solution

    def test_capacity_limit_on_constraints(self):
        model = knapsack_model([1, 2], [1, 1], 2)
        solver = BranchAndBoundSolver(limits=SolverLimits(max_constraints=0))
        assert solver.solve(model).status is SolverStatus.CAPACITY_EXCEEDED

    def test_node_limit_returns_best_incumbent(self):
        rng = np.random.default_rng(0)
        values = rng.integers(1, 100, 40).tolist()
        weights = rng.integers(1, 50, 40).tolist()
        model = knapsack_model(values, weights, int(0.4 * sum(weights)))
        solver = BranchAndBoundSolver(limits=SolverLimits(node_limit=3, relative_gap=0.0))
        solution = solver.solve(model)
        assert solution.status in (SolverStatus.FEASIBLE, SolverStatus.TIME_LIMIT, SolverStatus.OPTIMAL)
        if solution.has_solution:
            assert model.check_feasible(solution.values)

    def test_stats_are_populated(self, fast_solver):
        model = knapsack_model([10, 13, 7, 8, 2], [5, 6, 4, 3, 1], 10)
        solution = fast_solver.solve(model)
        assert solution.stats.nodes_explored >= 1
        assert solution.stats.lp_solves >= 1
        assert solution.stats.wall_time_seconds >= 0.0
