"""Tests for the presolve/postsolve reductions on MatrixForm.

The key invariant: without an integrality mask the reduction preserves the LP
feasible region exactly, and with one it preserves the ILP optimum — so a
presolved solve must agree with a cold solve on status, objective and (for
the property tests) the restored assignment's feasibility.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.lp_backend import LpBackend, WarmStart, solve_lp_form
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.presolve import presolve_form
from repro.ilp.status import SolverStatus


def budget_model() -> IlpModel:
    """0/1 knapsack where x0 and x5 can never fit and x4 is excluded."""
    model = IlpModel()
    for i in range(6):
        model.add_variable(f"x{i}", 0, 1)
    model.add_constraint(
        {0: 5.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0, 5: 20.0},
        ConstraintSense.LE, 4.0, name="budget",
    )
    model.add_constraint({4: 1.0}, ConstraintSense.LE, 0.0, name="exclude")
    model.set_objective(ObjectiveSense.MAXIMIZE, {i: float(i + 1) for i in range(6)})
    return model


def integer_mask(model: IlpModel) -> np.ndarray:
    return model.bound_and_integrality_arrays()[2]


class TestReductions:
    def test_integrality_fixes_overweight_columns(self):
        model = budget_model()
        result = presolve_form(model.to_matrix(), integer_mask=integer_mask(model))
        assert result.feasible
        # x0 (5 > 4), x5 (20 > 4) and the excluded x4 can never enter.
        assert result.stats.vars_fixed == 3
        assert result.postsolve.kept_cols.tolist() == [1, 2, 3]
        assert result.postsolve.fixed_values[[0, 4, 5]].tolist() == [0.0, 0.0, 0.0]
        # After fixing, the budget row can never bind and the singleton
        # exclude row was absorbed into x4's bound: both rows removed.
        assert result.stats.rows_removed == 2
        assert result.form.a_ub.shape[0] == 0

    def test_lp_presolve_never_rounds(self):
        model = budget_model()
        result = presolve_form(model.to_matrix())  # no integer mask
        assert result.feasible
        # Only the genuinely-forced x4 fixes; x0/x5 keep fractional headroom.
        assert result.stats.vars_fixed == 1
        assert 0 in result.postsolve.kept_cols
        assert 5 in result.postsolve.kept_cols

    def test_singleton_row_becomes_bound(self):
        model = IlpModel()
        model.add_variable("x", 0, 10, is_integer=False)
        model.add_variable("y", 0, 10, is_integer=False)
        model.add_constraint({0: 2.0}, ConstraintSense.LE, 6.0, name="single")
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.LE, 100.0, name="loose")
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 1.0, 1: 1.0})
        result = presolve_form(model.to_matrix())
        assert result.feasible
        # Both rows go: the singleton is absorbed into x <= 3, and the loose
        # row can never bind under the bounds.
        assert result.stats.rows_removed == 2
        lower, upper = result.form.bound_arrays()
        assert upper[0] == pytest.approx(3.0)

    def test_redundant_row_removed_variables_kept(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_variable("y", 0, 1)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.LE, 5.0, name="loose")
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 1.0, 1: 2.0})
        result = presolve_form(model.to_matrix(), integer_mask=integer_mask(model))
        assert result.feasible
        assert result.stats.rows_removed == 1
        assert result.stats.vars_fixed == 0
        assert result.form.a_ub.shape == (0, 2)

    def test_forced_equality_row_fixes_variables(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_variable("y", 0, 1)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.EQ, 2.0, name="both")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0, 1: 1.0})
        result = presolve_form(model.to_matrix(), integer_mask=integer_mask(model))
        assert result.feasible
        assert result.stats.vars_fixed == 2
        assert result.postsolve.restore(np.empty(0)).tolist() == [1.0, 1.0]

    def test_infeasible_row_detected(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_variable("y", 0, 1)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.GE, 3.0, name="impossible")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0})
        result = presolve_form(model.to_matrix())
        assert not result.feasible
        assert result.form is None

    def test_propagated_infeasibility_detected(self):
        # Individually satisfiable rows whose propagation crosses the bounds.
        model = IlpModel()
        model.add_variable("x", 0, 10, is_integer=False)
        model.add_constraint({0: 1.0}, ConstraintSense.LE, 2.0, name="low")
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 5.0, name="high")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0})
        assert not presolve_form(model.to_matrix()).feasible

    def test_equality_row_with_negative_coefficient_keeps_lp_optimum(self):
        """Regression: ``x - y = 0`` must not tighten y's *lower* bound.

        The GE-direction propagation of an equality row divides by the
        coefficient; for negative coefficients that flips the inequality, so
        the candidate is an upper bound.  Getting the side wrong fixed both
        variables at 10 here and silently changed the optimum from 0 to 10.
        """
        model = IlpModel()
        model.add_variable("x", 0, 10, is_integer=False)
        model.add_variable("y", 0, 10, is_integer=False)
        model.add_constraint({0: 1.0, 1: -1.0}, ConstraintSense.EQ, 0.0, name="tie")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0})
        form = model.to_matrix()
        on = solve_lp_form(form, LpBackend.HIGHS, presolve=True)
        off = solve_lp_form(form, LpBackend.HIGHS, presolve=False)
        assert on.status is off.status is SolverStatus.OPTIMAL
        assert on.objective_value == pytest.approx(0.0)
        assert off.objective_value == pytest.approx(0.0)

    def test_identity_reduction_returns_same_form(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_variable("y", 0, 1)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.EQ, 1.0, name="pick_one")
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 2.0, 1: 1.0})
        form = model.to_matrix()
        result = presolve_form(form, integer_mask=integer_mask(model))
        assert result.feasible
        assert result.form is form  # the working-matrix cache stays valid
        assert result.postsolve.identity


class TestPostsolve:
    def test_restore_reinserts_fixed_values(self):
        model = budget_model()
        result = presolve_form(model.to_matrix(), integer_mask=integer_mask(model))
        restored = result.postsolve.restore(np.array([1.0, 0.0, 1.0]))
        assert restored.tolist() == [0.0, 1.0, 0.0, 1.0, 0.0, 0.0]

    def test_objective_offset_accounts_for_fixed_columns(self):
        model = IlpModel()
        model.add_variable("x", 2, 2, is_integer=False)  # fixed by bounds
        model.add_variable("y", 0, 5, is_integer=False)
        model.add_constraint({1: 1.0}, ConstraintSense.LE, 3.0, name="cap")
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 10.0, 1: 1.0})
        form = model.to_matrix()
        on = solve_lp_form(form, LpBackend.HIGHS, presolve=True)
        off = solve_lp_form(form, LpBackend.HIGHS, presolve=False)
        assert on.objective_value == pytest.approx(off.objective_value)
        assert on.objective_value == pytest.approx(23.0)
        assert on.values == pytest.approx(off.values)

    def test_restored_basis_warm_starts_the_original_form(self):
        model = budget_model()
        # Continuous relaxation so the LP reduction stays exact.
        for variable in model.variables:
            variable.is_integer = False
        form = model.to_matrix()
        presolved = solve_lp_form(form, LpBackend.SIMPLEX, presolve=True)
        assert presolved.status is SolverStatus.OPTIMAL
        assert presolved.basis is not None
        # The exported basis was lifted to the original column space: it must
        # install cleanly on an un-presolved solve of the same form.
        again = solve_lp_form(
            form, LpBackend.SIMPLEX, warm_start=WarmStart(basis=presolved.basis),
            presolve=False,
        )
        assert again.status is SolverStatus.OPTIMAL
        assert again.warm_start_used
        assert again.objective_value == pytest.approx(presolved.objective_value)

    def test_reduce_bounds_propagates_branched_bounds(self):
        model = IlpModel()
        model.add_variable("x", 0, 4)
        model.add_variable("y", 0, 4)
        model.add_variable("z", 0, 1)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.LE, 5.0, name="pair")
        model.add_constraint({2: 1.0}, ConstraintSense.LE, 0.0, name="kill_z")
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 1.0, 1: 1.0, 2: 1.0})
        result = presolve_form(model.to_matrix(), integer_mask=integer_mask(model))
        post = result.postsolve
        assert result.stats.vars_fixed == 1  # z
        lower, upper, _ = model.bound_and_integrality_arrays()
        # Branch: force x >= 3; one propagation pass should pull y down to 2.
        branched_lower = lower.copy()
        branched_lower[0] = 3.0
        reduced_l, reduced_u = post.reduce_bounds(branched_lower, upper.copy())
        x_pos = int(np.nonzero(post.kept_cols == 0)[0][0])
        y_pos = int(np.nonzero(post.kept_cols == 1)[0][0])
        assert reduced_l[x_pos] == pytest.approx(3.0)
        assert reduced_u[y_pos] == pytest.approx(2.0)


class TestSolveParity:
    @pytest.mark.parametrize("backend", [LpBackend.HIGHS, LpBackend.SIMPLEX])
    def test_lp_presolve_parity(self, backend):
        model = budget_model()
        form = model.to_matrix()
        on = solve_lp_form(form, backend, presolve=True)
        off = solve_lp_form(form, backend, presolve=False)
        assert on.status is off.status is SolverStatus.OPTIMAL
        assert on.objective_value == pytest.approx(off.objective_value)
        assert on.values == pytest.approx(off.values, abs=1e-6)

    def test_lp_presolve_detects_infeasibility_without_solving(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 2.0, name="impossible")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0})
        result = solve_lp_form(model.to_matrix(), LpBackend.HIGHS, presolve=True)
        assert result.status is SolverStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", [LpBackend.HIGHS, LpBackend.SIMPLEX])
    def test_bnb_presolve_parity_on_budget_model(self, backend):
        on = BranchAndBoundSolver(lp_backend=backend, presolve=True).solve(budget_model())
        off = BranchAndBoundSolver(lp_backend=backend, presolve=False).solve(budget_model())
        assert on.status is off.status is SolverStatus.OPTIMAL
        assert on.objective_value == pytest.approx(off.objective_value)
        assert on.stats.vars_fixed == 3
        assert on.stats.rows_removed == 2
        assert on.stats.presolve_ms > 0.0

    def test_bnb_all_variables_fixed_by_presolve(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_variable("y", 0, 1)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.EQ, 2.0, name="both")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 3.0, 1: 4.0})
        solution = BranchAndBoundSolver(presolve=True).solve(model)
        assert solution.status is SolverStatus.OPTIMAL
        assert solution.values.tolist() == [1.0, 1.0]
        assert solution.objective_value == pytest.approx(7.0)
        assert solution.stats.lp_solves == 0

    def test_bnb_presolve_infeasible_root(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 2.0, name="impossible")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0})
        solution = BranchAndBoundSolver(presolve=True).solve(model)
        assert solution.status is SolverStatus.INFEASIBLE
        assert solution.stats.lp_solves == 0

    def test_warm_started_bnb_agrees_with_presolve(self):
        # SKETCHREFINE-style reuse: a root basis exported from one presolved
        # solve seeds a retry of a same-shaped model.
        model = budget_model()
        solver = BranchAndBoundSolver(lp_backend=LpBackend.SIMPLEX, presolve=True)
        first = solver.solve(model)
        assert first.status is SolverStatus.OPTIMAL
        assert first.root_basis is not None
        retry = solver.solve(budget_model(), warm_start=WarmStart(basis=first.root_basis))
        assert retry.status is SolverStatus.OPTIMAL
        assert retry.objective_value == pytest.approx(first.objective_value)


@st.composite
def paql_shaped_models(draw):
    """Random 0/1 package-query-shaped ILPs: COUNT row + SUM windows."""
    n = draw(st.integers(min_value=4, max_value=14))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    model = IlpModel()
    for i in range(n):
        model.add_variable(f"t{i}", 0, draw(st.sampled_from([1, 1, 2])))
    count = draw(st.integers(min_value=1, max_value=max(1, n // 2)))
    sense = draw(st.sampled_from([ConstraintSense.EQ, ConstraintSense.LE]))
    model.add_constraint({i: 1.0 for i in range(n)}, sense, float(count), name="count")
    num_sums = draw(st.integers(min_value=1, max_value=3))
    for k in range(num_sums):
        weights = rng.lognormal(0.0, 1.0, n).round(3)
        if draw(st.booleans()):
            # Mixed-sign rows (AVG-style linearisations subtract the bound
            # from every coefficient) exercise the inequality-flipping
            # branches of the propagation.
            weights = weights - float(np.median(weights))
        direction = draw(
            st.sampled_from([ConstraintSense.LE, ConstraintSense.GE, ConstraintSense.EQ])
        )
        # Budgets around the expected package weight keep a mix of feasible
        # and infeasible instances, with some columns individually too heavy.
        budget = float(np.median(np.abs(weights)) * count * draw(st.floats(0.5, 2.0)))
        model.add_constraint(
            {i: float(w) for i, w in enumerate(weights)}, direction, budget, name=f"sum{k}"
        )
    objective = rng.normal(0.0, 1.0, n).round(3)
    sense = draw(st.sampled_from([ObjectiveSense.MAXIMIZE, ObjectiveSense.MINIMIZE]))
    model.set_objective(sense, {i: float(c) for i, c in enumerate(objective)})
    return model


class TestPresolveProperties:
    @settings(max_examples=40, deadline=None)
    @given(model=paql_shaped_models())
    def test_presolved_ilp_solve_equals_cold_solve(self, model):
        limits = SolverLimits(node_limit=4000)
        on = BranchAndBoundSolver(limits=limits, presolve=True).solve(model)
        off = BranchAndBoundSolver(limits=limits, presolve=False).solve(model)
        assert on.status is off.status
        if on.status is SolverStatus.OPTIMAL:
            assert on.objective_value == pytest.approx(off.objective_value, abs=1e-6)
            assert model.check_feasible(on.values)

    @settings(max_examples=40, deadline=None)
    @given(model=paql_shaped_models())
    def test_presolved_lp_relaxation_matches_highs(self, model):
        form = model.to_matrix()
        on = solve_lp_form(form, LpBackend.HIGHS, presolve=True)
        off = solve_lp_form(form, LpBackend.HIGHS, presolve=False)
        assert on.status is off.status
        if on.status is SolverStatus.OPTIMAL:
            assert on.objective_value == pytest.approx(off.objective_value, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(model=paql_shaped_models())
    def test_presolved_simplex_restores_original_space_solutions(self, model):
        form = model.to_matrix()
        result = solve_lp_form(form, LpBackend.SIMPLEX, presolve=True)
        if result.status is SolverStatus.OPTIMAL:
            assert len(result.values) == model.num_variables
            lower, upper, _ = model.bound_and_integrality_arrays()
            assert np.all(result.values >= lower - 1e-6)
            assert np.all(result.values <= upper + 1e-6)
