"""Tests for the dense simplex solver and the LP backend wrapper.

The simplex implementation is cross-checked against SciPy's HiGHS on both
hand-crafted and randomly generated LPs (a property-based consistency test).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.lp_backend import LpBackend, solve_lp, solve_lp_dense
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.simplex import SimplexStatus, solve_dense_simplex
from repro.ilp.status import SolverStatus


def simple_lp_model() -> IlpModel:
    """max 3x + 2y s.t. x + y <= 4, x <= 2, x,y >= 0 → optimum 10 at (2, 2)."""
    model = IlpModel()
    model.add_variable("x", is_integer=False)
    model.add_variable("y", is_integer=False)
    model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.LE, 4)
    model.add_constraint({0: 1.0}, ConstraintSense.LE, 2)
    model.set_objective(ObjectiveSense.MAXIMIZE, {0: 3.0, 1: 2.0})
    return model


class TestSimplexDirect:
    def test_simple_maximisation(self):
        model = simple_lp_model()
        result = solve_lp(model, LpBackend.SIMPLEX)
        assert result.status is SolverStatus.OPTIMAL
        assert result.objective_value == pytest.approx(10.0)
        assert result.values == pytest.approx([2.0, 2.0])

    def test_equality_constraints(self):
        result = solve_dense_simplex(
            c=np.array([1.0, 1.0]),
            a_ub=np.empty((0, 2)),
            b_ub=np.empty(0),
            a_eq=np.array([[1.0, 2.0]]),
            b_eq=np.array([4.0]),
            bounds=[(0.0, None), (0.0, None)],
        )
        assert result.status is SimplexStatus.OPTIMAL
        assert result.objective == pytest.approx(2.0)  # y = 2, x = 0.

    def test_infeasible(self):
        result = solve_dense_simplex(
            c=np.array([1.0]),
            a_ub=np.array([[1.0], [-1.0]]),
            b_ub=np.array([1.0, -3.0]),  # x <= 1 and x >= 3.
            a_eq=np.empty((0, 1)),
            b_eq=np.empty(0),
            bounds=[(0.0, None)],
        )
        assert result.status is SimplexStatus.INFEASIBLE

    def test_unbounded(self):
        result = solve_dense_simplex(
            c=np.array([-1.0]),  # minimise -x with x unbounded above.
            a_ub=np.empty((0, 1)),
            b_ub=np.empty(0),
            a_eq=np.empty((0, 1)),
            b_eq=np.empty(0),
            bounds=[(0.0, None)],
        )
        assert result.status is SimplexStatus.UNBOUNDED

    def test_nonzero_lower_bounds(self):
        result = solve_dense_simplex(
            c=np.array([1.0, 1.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([10.0]),
            a_eq=np.empty((0, 2)),
            b_eq=np.empty(0),
            bounds=[(2.0, 5.0), (1.0, None)],
        )
        assert result.status is SimplexStatus.OPTIMAL
        assert result.x == pytest.approx([2.0, 1.0])
        assert result.objective == pytest.approx(3.0)

    def test_upper_bounds_respected(self):
        result = solve_dense_simplex(
            c=np.array([-1.0]),
            a_ub=np.empty((0, 1)),
            b_ub=np.empty(0),
            a_eq=np.empty((0, 1)),
            b_eq=np.empty(0),
            bounds=[(0.0, 7.0)],
        )
        assert result.status is SimplexStatus.OPTIMAL
        assert result.x[0] == pytest.approx(7.0)


class TestBackendAgreement:
    def test_highs_and_simplex_agree_on_simple_model(self):
        model = simple_lp_model()
        highs = solve_lp(model, LpBackend.HIGHS)
        simplex = solve_lp(model, LpBackend.SIMPLEX)
        assert highs.objective_value == pytest.approx(simplex.objective_value)

    def test_highs_reports_infeasible(self):
        model = IlpModel()
        model.add_variable("x", upper=1, is_integer=False)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 2)
        assert solve_lp(model, LpBackend.HIGHS).status is SolverStatus.INFEASIBLE
        assert solve_lp(model, LpBackend.SIMPLEX).status is SolverStatus.INFEASIBLE

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        num_vars=st.integers(min_value=1, max_value=4),
        num_constraints=st.integers(min_value=1, max_value=4),
    )
    def test_random_lps_agree_with_highs(self, data, num_vars, num_constraints):
        """Property: on random bounded LPs, the simplex matches HiGHS.

        Variables are box-bounded so the LP is never unbounded; both backends
        must agree on feasibility, and on the optimal objective value when
        feasible.
        """
        coefficient = st.integers(min_value=-5, max_value=5)
        c = np.array([data.draw(coefficient) for _ in range(num_vars)], dtype=float)
        a_ub = np.array(
            [[data.draw(coefficient) for _ in range(num_vars)] for _ in range(num_constraints)],
            dtype=float,
        )
        b_ub = np.array([data.draw(st.integers(min_value=-3, max_value=10)) for _ in range(num_constraints)], dtype=float)
        bounds = [(0.0, 5.0)] * num_vars

        simplex = solve_dense_simplex(c, a_ub, b_ub, np.empty((0, num_vars)), np.empty(0), bounds)

        from scipy.optimize import linprog

        reference = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if reference.status == 2:
            assert simplex.status is SimplexStatus.INFEASIBLE
        elif reference.status == 0:
            assert simplex.status is SimplexStatus.OPTIMAL
            assert simplex.objective == pytest.approx(reference.fun, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        num_vars=st.integers(min_value=1, max_value=4),
        num_constraints=st.integers(min_value=1, max_value=4),
    )
    def test_random_warm_reoptimisations_agree_with_highs(self, data, num_vars, num_constraints):
        """Property: warm-started re-solves match HiGHS on the modified LP.

        Solve a random bounded LP cold, tighten one variable's bounds the way
        a branch-and-bound child would, then re-solve from the parent basis.
        The warm result must agree with a from-scratch HiGHS solve on both
        feasibility and the optimal objective.
        """
        coefficient = st.integers(min_value=-5, max_value=5)
        c = np.array([data.draw(coefficient) for _ in range(num_vars)], dtype=float)
        a_ub = np.array(
            [[data.draw(coefficient) for _ in range(num_vars)] for _ in range(num_constraints)],
            dtype=float,
        )
        b_ub = np.array(
            [data.draw(st.integers(min_value=-3, max_value=10)) for _ in range(num_constraints)],
            dtype=float,
        )
        bounds = [(0.0, 5.0)] * num_vars

        parent = solve_dense_simplex(c, a_ub, b_ub, np.empty((0, num_vars)), np.empty(0), bounds)
        if parent.status is not SimplexStatus.OPTIMAL:
            return

        branch_var = data.draw(st.integers(min_value=0, max_value=num_vars - 1))
        branch_up = data.draw(st.booleans())
        split = float(np.floor(parent.x[branch_var]))
        child_bounds = list(bounds)
        if branch_up:
            child_bounds[branch_var] = (min(split + 1.0, 5.0), 5.0)
        else:
            child_bounds[branch_var] = (0.0, max(split, 0.0))

        warm = solve_dense_simplex(
            c, a_ub, b_ub, np.empty((0, num_vars)), np.empty(0),
            child_bounds, warm_start=parent.basis,
        )

        from scipy.optimize import linprog

        reference = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=child_bounds, method="highs")
        if reference.status == 2:
            assert warm.status is SimplexStatus.INFEASIBLE
        elif reference.status == 0:
            assert warm.status is SimplexStatus.OPTIMAL
            assert warm.objective == pytest.approx(reference.fun, abs=1e-6)


class TestNumericalErrorStatus:
    """A corrupt/singular basis inverse must surface as NUMERICAL_ERROR, not
    masquerade as ITERATION_LIMIT (which callers treat as a pivot budget)."""

    def _force_refactor_failure(self, monkeypatch):
        from repro.ilp import simplex as simplex_mod

        monkeypatch.setattr(simplex_mod, "_REFACTOR_INTERVAL", 1)
        monkeypatch.setattr(
            simplex_mod._BoundedRevisedSimplex, "_refactorize", lambda self: False
        )

    def test_simplex_reports_numerical_error(self, monkeypatch):
        self._force_refactor_failure(monkeypatch)
        result = solve_dense_simplex(
            c=np.array([-3.0, -2.0]),
            a_ub=np.array([[1.0, 1.0], [1.0, 0.0]]),
            b_ub=np.array([4.0, 2.0]),
            a_eq=np.empty((0, 2)),
            b_eq=np.empty(0),
            bounds=[(0.0, None), (0.0, None)],
        )
        assert result.status is SimplexStatus.NUMERICAL_ERROR

    def test_lp_backend_maps_numerical_error(self, monkeypatch):
        from repro.ilp.lp_backend import solve_lp_form

        self._force_refactor_failure(monkeypatch)
        form = simple_lp_model().to_matrix()
        result = solve_lp_form(form, LpBackend.SIMPLEX, presolve=False)
        assert result.status is SolverStatus.NUMERICAL_ERROR
        assert SolverStatus.NUMERICAL_ERROR.is_failure
        assert not result.status.has_solution

    def test_branch_and_bound_retries_numerically_failed_warm_nodes(self, monkeypatch):
        """A NUMERICAL_ERROR on a warm-started node LP triggers a cold retry
        (counted in stats) instead of pruning the subtree or aborting."""
        import repro.ilp.branch_and_bound as bnb
        from repro.ilp.branch_and_bound import BranchAndBoundSolver
        from repro.ilp.lp_backend import LpResult

        model = IlpModel()
        for i, (value, weight) in enumerate([(10, 5), (13, 6), (7, 4), (8, 3)]):
            model.add_variable(f"x{i}", 0, 1)
        model.add_constraint(
            {0: 5.0, 1: 6.0, 2: 4.0, 3: 3.0}, ConstraintSense.LE, 10
        )
        model.set_objective(
            ObjectiveSense.MAXIMIZE, {0: 10.0, 1: 13.0, 2: 7.0, 3: 8.0}
        )

        real = bnb.solve_lp_form
        failed = []

        def flaky(form, backend, warm_start=None, presolve=True, **kwargs):
            if warm_start is not None and not failed:
                failed.append(True)
                return LpResult(SolverStatus.NUMERICAL_ERROR, np.empty(0), float("nan"))
            return real(form, backend, warm_start=warm_start, presolve=presolve, **kwargs)

        monkeypatch.setattr(bnb, "solve_lp_form", flaky)
        solver = BranchAndBoundSolver(lp_backend=LpBackend.SIMPLEX)
        solution = solver.solve(model)
        assert failed, "expected at least one warm-started node LP"
        assert solution.status is SolverStatus.OPTIMAL
        assert solution.stats.numerical_retries == 1
        cold = BranchAndBoundSolver(lp_backend=LpBackend.SIMPLEX, warm_start_lp=False).solve(model)
        assert solution.objective_value == pytest.approx(cold.objective_value)
