"""Tests for the relax-and-round heuristic solver, IIS extraction and statuses."""

import numpy as np
import pytest

from repro.ilp import rounding
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.iis import constraint_columns, find_iis
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.rounding import RelaxAndRoundSolver
from repro.ilp.status import Solution, SolverStatus


def knapsack(values, weights, capacity) -> IlpModel:
    model = IlpModel()
    for i in range(len(values)):
        model.add_variable(f"x{i}", 0, 1)
    model.add_constraint({i: float(w) for i, w in enumerate(weights)}, ConstraintSense.LE, capacity)
    model.set_objective(ObjectiveSense.MAXIMIZE, {i: float(v) for i, v in enumerate(values)})
    return model


class TestRelaxAndRound:
    def test_returns_feasible_solution(self):
        model = knapsack([10, 13, 7, 8, 2], [5, 6, 4, 3, 1], 10)
        solution = RelaxAndRoundSolver().solve(model)
        assert solution.status is SolverStatus.FEASIBLE
        assert model.check_feasible(solution.values)

    def test_never_claims_optimality(self):
        model = knapsack([3, 2], [1, 1], 1)
        assert RelaxAndRoundSolver().solve(model).status is not SolverStatus.OPTIMAL

    def test_quality_close_to_exact_on_knapsack(self, rng):
        values = rng.integers(1, 50, 30).tolist()
        weights = rng.integers(1, 20, 30).tolist()
        capacity = int(0.5 * sum(weights))
        model = knapsack(values, weights, capacity)
        exact = BranchAndBoundSolver(limits=SolverLimits(relative_gap=1e-9)).solve(model)
        approximate = RelaxAndRoundSolver().solve(model)
        assert approximate.status is SolverStatus.FEASIBLE
        # LP-rounding on a knapsack is at most one item worse than optimal in
        # theory; allow a generous margin but require reasonable quality.
        assert approximate.objective_value >= 0.8 * exact.objective_value

    def test_infeasible_detected(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 2)
        assert RelaxAndRoundSolver().solve(model).status is SolverStatus.INFEASIBLE

    def test_repair_handles_ge_constraints(self):
        # LP optimum is fractional; rounding down violates the GE constraint
        # and the greedy repair must push a variable back up.
        model = IlpModel()
        model.add_variable("x", 0, 3)
        model.add_variable("y", 0, 3)
        model.add_constraint({0: 2.0, 1: 3.0}, ConstraintSense.GE, 7)
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0, 1: 1.0})
        solution = RelaxAndRoundSolver().solve(model)
        assert solution.status is SolverStatus.FEASIBLE
        assert model.check_feasible(solution.values)

    def test_repair_oscillation_bails_instead_of_livelocking(self, monkeypatch):
        """Regression: two coupled equalities used to make repair oscillate ±1.

        Rounding the LP optimum (0.5, 0.5) of ``x + y = 1, x - y = 0`` gives
        (0, 0); the greedy step then bounces between raising y (fixing the
        first row, breaking the second) and lowering it again, never reducing
        the total violation.  The repair loop must detect the stalled pass
        and give up instead of burning the whole pass budget.
        """
        model = IlpModel()
        model.add_variable("x", 0, 3)
        model.add_variable("y", 0, 3)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.EQ, 1, name="sum_one")
        model.add_constraint({0: 1.0, 1: -1.0}, ConstraintSense.EQ, 0, name="balance")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0, 1: 0.0})

        # A pass budget large enough that a livelock would dominate the test
        # run; the violation-progress check must bail long before it.
        monkeypatch.setattr(rounding, "_MAX_REPAIR_PASSES", 50_000)
        passes = 0
        original = RelaxAndRoundSolver._fix_constraint

        def counting_fix(self, model_, constraint, values):
            nonlocal passes
            passes += 1
            return original(self, model_, constraint, values)

        monkeypatch.setattr(RelaxAndRoundSolver, "_fix_constraint", counting_fix)
        solution = RelaxAndRoundSolver().solve(model)
        assert solution.status is SolverStatus.INFEASIBLE
        assert passes < 10

    def test_repair_multi_step_progress_still_allowed(self):
        """Repairs needing several passes (monotone progress) keep working."""
        model = IlpModel()
        model.add_variable("x", 0, 5)
        model.add_variable("y", 0, 5)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.GE, 6, name="floor")
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0, 1: 1.0})
        repaired = RelaxAndRoundSolver()._repair(model, np.array([0.0, 0.0]))
        assert repaired is not None
        assert model.check_feasible(repaired)

    def test_black_box_protocol_with_direct_evaluator(self, recipes):
        """The evaluators accept any solver implementing the solve() protocol.

        A knapsack-style package query (cap on total kcal, maximise protein)
        is used because LP-rounding is reliable on that structure; the exact
        branch-and-bound solver is only one possible black box.
        """
        from repro.core.direct import DirectEvaluator
        from repro.core.validation import check_package
        from repro.paql.builder import query_over

        query = (
            query_over("recipes")
            .no_repetition()
            .count_at_most(5)
            .sum_at_most("kcal", 3.0)
            .maximize_sum("protein")
            .build()
        )
        evaluator = DirectEvaluator(solver=RelaxAndRoundSolver())
        package = evaluator.evaluate(recipes, query)
        assert check_package(package, query).feasible


class TestIis:
    def test_feasible_model_has_empty_iis(self):
        model = knapsack([1, 2], [1, 1], 2)
        assert find_iis(model) == []

    def test_single_conflicting_constraint(self):
        model = IlpModel()
        model.add_variable("x", 0, 1)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 5, name="too_big")
        assert find_iis(model) == ["too_big"]

    def test_conflicting_pair_found(self):
        model = IlpModel()
        model.add_variable("x", 0, 10)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 8, name="high")
        model.add_constraint({0: 1.0}, ConstraintSense.LE, 2, name="low")
        model.add_constraint({0: 1.0}, ConstraintSense.LE, 9, name="harmless")
        iis = find_iis(model)
        assert set(iis) == {"high", "low"}

    def test_iis_on_triplet_built_model(self):
        """The deletion filter handles models built through the array fast path."""
        model = IlpModel()
        for i in range(4):
            model.add_variable(f"x{i}", 0, 10)
        model.add_constraint_arrays(
            np.array([0, 1, 2, 3]), np.array([1.0, 1.0, 1.0, 1.0]),
            ConstraintSense.GE, 30.0, name="floor",
        )
        model.add_constraint_arrays(
            np.array([0, 1, 2, 3]), np.array([1.0, 1.0, 1.0, 1.0]),
            ConstraintSense.LE, 10.0, name="ceiling",
        )
        model.add_constraint_arrays(
            np.array([0]), np.array([1.0]), ConstraintSense.LE, 9.0, name="harmless"
        )
        model.set_objective_arrays(
            ObjectiveSense.MINIMIZE, np.array([0, 1]), np.array([1.0, 1.0])
        )
        assert set(find_iis(model)) == {"floor", "ceiling"}

    def test_constraint_columns(self):
        model = IlpModel()
        model.add_variable("x", 0, 10)
        model.add_variable("y", 0, 10)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 8, name="a")
        model.add_constraint({1: 1.0}, ConstraintSense.LE, 2, name="b")
        assert constraint_columns(model, ["a"]) == {0}
        assert constraint_columns(model, ["a", "b"]) == {0, 1}


class TestSolutionAndStatus:
    def test_status_helpers(self):
        assert SolverStatus.OPTIMAL.has_solution
        assert SolverStatus.FEASIBLE.has_solution
        assert not SolverStatus.INFEASIBLE.has_solution
        assert SolverStatus.CAPACITY_EXCEEDED.is_failure
        assert not SolverStatus.OPTIMAL.is_failure

    def test_solution_value_of(self):
        solution = Solution(SolverStatus.OPTIMAL, np.array([1.0, 2.0]), 3.0)
        assert solution.value_of(1) == 2.0
        assert solution.value_of(9) == 0.0
        assert Solution.infeasible().value_of(0) == 0.0

    def test_integral_values(self):
        solution = Solution(SolverStatus.OPTIMAL, np.array([0.999999, 2.000001]), 3.0)
        assert solution.integral_values().tolist() == [1, 2]

    def test_factories(self):
        assert Solution.infeasible().status is SolverStatus.INFEASIBLE
        assert Solution.failure(SolverStatus.TIME_LIMIT).status is SolverStatus.TIME_LIMIT
