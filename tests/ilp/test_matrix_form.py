"""Tests for the sparse-first MatrixForm IR.

Covers sparse/dense storage parity (same matrices, same solve results through
both backends), the zero-copy structural sharing branch-and-bound relies on,
the O(1)/array fast paths on the model, the root-basis warm-start handoff
used by SKETCHREFINE's backtracking retries, and the pickling contract the
parallel solve plane relies on (per-process caches dropped, everything else
round-tripping bit-exactly).
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse as sp

from repro.errors import SolverError
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.lp_backend import LpBackend, WarmStart, solve_lp_form
from repro.ilp.matrix_form import MatrixForm, choose_sparse
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.simplex import _WORK_CACHE_KEY
from repro.ilp.status import SolverStatus

_SENSES = (ConstraintSense.LE, ConstraintSense.GE, ConstraintSense.EQ)


def _random_model(draw_values, n, constraints, objective, rhs_offsets):
    """Build an IlpModel from hypothesis-drawn raw data."""
    model = IlpModel("prop")
    for i in range(n):
        model.add_variable(f"x{i}", 0, 3)
    for number, (coefficients, sense_index, rhs_offset) in enumerate(
        zip(constraints, [s % 3 for s in rhs_offsets], rhs_offsets)
    ):
        coefficients = coefficients[:n]
        sense = _SENSES[sense_index]
        # Keep EQ/GE right-hand sides reachable so a healthy fraction of the
        # generated models is feasible.
        magnitude = float(sum(abs(c) for c in coefficients))
        rhs = (rhs_offset % 7) / 6.0 * max(magnitude, 1.0)
        if sense is ConstraintSense.EQ:
            rhs = round(rhs)
        model.add_constraint(
            {i: float(c) for i, c in enumerate(coefficients)}, sense, rhs
        )
    model.set_objective(
        ObjectiveSense.MAXIMIZE, {i: float(c) for i, c in enumerate(objective[:n])}
    )
    return model


@st.composite
def _models(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    num_constraints = draw(st.integers(min_value=0, max_value=4))
    coefficient = st.integers(min_value=-3, max_value=3)
    constraints = draw(
        st.lists(
            st.lists(coefficient, min_size=n, max_size=n),
            min_size=num_constraints,
            max_size=num_constraints,
        )
    )
    objective = draw(st.lists(coefficient, min_size=n, max_size=n))
    rhs_offsets = draw(
        st.lists(
            st.integers(min_value=0, max_value=20),
            min_size=num_constraints,
            max_size=num_constraints,
        )
    )
    return _random_model(draw, n, constraints, objective, rhs_offsets)


class TestStorageParity:
    def test_sparse_and_dense_exports_hold_the_same_matrices(self):
        model = IlpModel()
        for i in range(5):
            model.add_variable(f"x{i}", 0, 2)
        model.add_constraint({0: 1.0, 3: -2.0}, ConstraintSense.LE, 4)
        model.add_constraint({1: 1.0, 2: 1.0}, ConstraintSense.GE, 1)
        model.add_constraint({4: 3.0}, ConstraintSense.EQ, 3)
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0, 4: -1.0})

        sparse_form = model.to_matrix(sparse=True)
        dense_form = model.to_matrix(sparse=False)
        assert sparse_form.is_sparse
        assert not dense_form.is_sparse
        assert sp.issparse(sparse_form.a_ub)
        np.testing.assert_allclose(sparse_form.a_ub.toarray(), dense_form.a_ub)
        np.testing.assert_allclose(sparse_form.a_eq.toarray(), dense_form.a_eq)
        np.testing.assert_allclose(sparse_form.c, dense_form.c)
        assert sparse_form.nnz == dense_form.nnz == 5
        assert sparse_form.bounds == dense_form.bounds

    @settings(max_examples=40, deadline=None)
    @given(model=_models())
    def test_random_models_solve_identically_through_both_storages(self, model):
        """The sparse path and the dense fallback agree on status and objective."""
        outcomes = []
        for sparse in (True, False):
            form = model.to_matrix(sparse=sparse)
            for backend in (LpBackend.SIMPLEX, LpBackend.HIGHS):
                result = solve_lp_form(form, backend)
                outcomes.append((sparse, backend, result))
        statuses = {result.status for _, _, result in outcomes}
        assert len(statuses) == 1, outcomes
        if outcomes[0][2].status is SolverStatus.OPTIMAL:
            objectives = [result.objective_value for _, _, result in outcomes]
            assert objectives == pytest.approx([objectives[0]] * len(objectives), abs=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(model=_models())
    def test_branch_and_bound_agrees_across_storages(self, model):
        limits = SolverLimits(relative_gap=1e-9, node_limit=2_000)
        values = {}
        for sparse in (True, False):
            clone = model.copy()
            clone.sparse_matrix = sparse
            assert clone.to_matrix().is_sparse is sparse
            solution = BranchAndBoundSolver(
                limits=limits, lp_backend=LpBackend.SIMPLEX
            ).solve(clone)
            values[sparse] = (solution.status, solution.objective_value)
        assert values[True][0] is values[False][0]
        if values[True][0] is SolverStatus.OPTIMAL:
            assert values[True][1] == pytest.approx(values[False][1], abs=1e-6)


class TestZeroCopySharing:
    def _model(self, sparse):
        model = IlpModel()
        for i in range(6):
            model.add_variable(f"x{i}", 0, 1)
        model.add_constraint({i: float(i + 1) for i in range(6)}, ConstraintSense.LE, 9)
        model.add_constraint({0: 1.0, 5: 1.0}, ConstraintSense.GE, 1)
        model.set_objective(ObjectiveSense.MAXIMIZE, {i: 1.0 for i in range(6)})
        model.sparse_matrix = sparse
        return model

    @pytest.mark.parametrize("sparse", [True, False])
    def test_with_bounds_shares_constraint_buffers_and_cache(self, sparse):
        form = self._model(sparse).to_matrix()
        lower, upper = form.bound_arrays()
        upper[0] = 0.0
        child = form.with_bounds(lower, upper)
        assert child.a_ub is form.a_ub
        assert child.a_eq is form.a_eq
        assert child.c is form.c
        assert child.b_ub is form.b_ub
        assert child.cache is form.cache
        if sparse:
            grandchild = child.with_bounds(lower.copy(), upper.copy())
            assert grandchild.a_ub.data is form.a_ub.data
            assert grandchild.a_ub.indices is form.a_ub.indices
            assert grandchild.a_ub.indptr is form.a_ub.indptr

    @pytest.mark.parametrize("sparse", [True, False])
    def test_branch_and_bound_tree_assembles_one_working_matrix(self, sparse):
        """Every node of the tree shares the single cached simplex work matrix."""
        model = self._model(sparse)
        form = model.to_matrix()
        assert _WORK_CACHE_KEY not in form.cache
        solution = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-9), lp_backend=LpBackend.SIMPLEX
        ).solve(model)
        assert solution.status is SolverStatus.OPTIMAL
        work = form.cache[_WORK_CACHE_KEY]
        assert work.sparse is sparse
        # A second solve (new tree, same model) reuses the same assembly.
        BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-9), lp_backend=LpBackend.SIMPLEX
        ).solve(model)
        assert form.cache[_WORK_CACHE_KEY] is work


class TestModelFastPaths:
    def test_add_constraint_arrays_validates(self):
        model = IlpModel()
        model.add_variable("x")
        model.add_variable("y")
        constraint = model.add_constraint_arrays(
            np.array([0, 1]), np.array([2.0, 0.0]), ConstraintSense.LE, 5
        )
        assert constraint.coefficients == {0: 2.0}
        with pytest.raises(SolverError):
            model.add_constraint_arrays(
                np.array([0, 0]), np.array([1.0, 1.0]), ConstraintSense.LE, 1
            )
        with pytest.raises(SolverError):
            model.add_constraint_arrays(
                np.array([7]), np.array([1.0]), ConstraintSense.LE, 1
            )
        with pytest.raises(SolverError):
            model.set_objective_arrays(
                ObjectiveSense.MINIMIZE, np.array([5]), np.array([1.0])
            )

    def test_variable_lookup_is_index_backed(self):
        model = IlpModel()
        for i in range(50):
            model.add_variable(f"x{i}")
        assert model.variable_by_name("x37").index == 37
        with pytest.raises(SolverError):
            model.variable_by_name("nope")

    def test_vectorised_evaluation_matches_manual(self):
        model = IlpModel()
        for i in range(4):
            model.add_variable(f"x{i}", 0, 10)
        constraint = model.add_constraint(
            {0: 1.5, 2: -2.0}, ConstraintSense.LE, 1.0
        )
        model.set_objective(ObjectiveSense.MINIMIZE, {1: 2.0, 3: -1.0})
        values = np.array([2.0, 3.0, 1.0, 4.0])
        assert constraint.evaluate(values) == pytest.approx(1.5 * 2.0 - 2.0 * 1.0)
        assert constraint.violation(values) == pytest.approx(0.0)
        assert model.objective_value(values) == pytest.approx(2.0 * 3.0 - 4.0)
        assert model.check_feasible(np.array([0.0, 0.0, 0.0, 0.0]))
        assert not model.check_feasible(np.array([2.0, 0.0, 0.0, 0.0]))  # constraint
        assert not model.check_feasible(np.array([0.5, 0.0, 0.0, 0.0]))  # integrality

    def test_choose_sparse_policy(self):
        # Tiny models always take the dense fallback.
        assert not choose_sparse(100, 5)
        # Large and sparse: CSR wins.
        assert choose_sparse(1_000_000, 10_000)
        # Large but fully dense: CSR's index overhead would lose; stay dense.
        assert not choose_sparse(1_000_000, 1_000_000)


class TestRootBasisHandoff:
    def _model(self):
        rng = np.random.default_rng(5)
        model = IlpModel("handoff")
        weights = rng.integers(2, 9, 12).astype(float)
        values = rng.integers(1, 20, 12).astype(float)
        for i in range(12):
            model.add_variable(f"x{i}", 0, 1)
        model.add_constraint(
            {i: w for i, w in enumerate(weights)}, ConstraintSense.LE, weights.sum() * 0.4
        )
        model.set_objective(ObjectiveSense.MAXIMIZE, {i: v for i, v in enumerate(values)})
        return model

    def test_solution_exports_root_basis_and_accepts_it_back(self):
        solver = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-9), lp_backend=LpBackend.SIMPLEX
        )
        first = solver.solve(self._model())
        assert first.status is SolverStatus.OPTIMAL
        assert first.root_basis is not None

        # A related model (same shape, slightly shifted rhs) warm-starts its
        # root from the exported basis — this is the SKETCHREFINE retry path.
        retry_model = self._model()
        retry_model.constraints[0].rhs *= 0.95
        second = solver.solve(retry_model, warm_start=WarmStart(basis=first.root_basis))
        assert second.status is SolverStatus.OPTIMAL
        assert second.stats.warm_start_hits >= 1

        # The warm tree must agree with a cold one.
        cold = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-9), lp_backend=LpBackend.SIMPLEX
        ).solve(retry_model.copy())
        assert second.objective_value == pytest.approx(cold.objective_value)

    def test_highs_backend_exports_no_root_basis(self):
        solution = BranchAndBoundSolver(lp_backend=LpBackend.HIGHS).solve(self._model())
        assert solution.status is SolverStatus.OPTIMAL
        assert solution.root_basis is None


class TestPickling:
    """The pickling contract of the parallel solve plane.

    Forms, postsolve records, bases and models cross the process boundary
    when refine ILPs fan out to workers: derived per-process caches must be
    dropped (never aliased between processes), everything else must
    round-trip bit-exactly, and a re-solve of the round-tripped object must
    agree with the original.
    """

    def _model(self, num_vars=8):
        rng = np.random.default_rng(11)
        model = IlpModel("pickled")
        weights = rng.integers(1, 9, num_vars).astype(float)
        gains = rng.integers(1, 15, num_vars).astype(float)
        for i in range(num_vars):
            model.add_variable(f"x{i}", 0, 2)
        model.add_constraint(
            {i: w for i, w in enumerate(weights)}, ConstraintSense.LE, weights.sum() * 0.5
        )
        model.add_constraint({0: 1.0, num_vars - 1: 1.0}, ConstraintSense.GE, 1)
        model.set_objective(ObjectiveSense.MAXIMIZE, {i: g for i, g in enumerate(gains)})
        return model

    def _assert_matrix_equal(self, left, right):
        if sp.issparse(left):
            assert sp.issparse(right)
            np.testing.assert_array_equal(left.toarray(), right.toarray())
        else:
            np.testing.assert_array_equal(left, right)

    @pytest.mark.parametrize("sparse", [True, False])
    def test_matrix_form_round_trips_without_its_cache(self, sparse):
        model = self._model()
        model.sparse_matrix = sparse
        form = model.to_matrix()
        # Populate the per-process caches with a real solve before pickling.
        result = solve_lp_form(form, LpBackend.SIMPLEX)
        assert result.status is SolverStatus.OPTIMAL
        assert form.cache, "expected the solve to populate the working cache"

        clone = pickle.loads(pickle.dumps(form))
        assert clone.cache == {}
        assert form.cache, "pickling must not clear the original's cache"
        assert clone.is_sparse is form.is_sparse
        assert clone.maximize is form.maximize
        self._assert_matrix_equal(form.a_ub, clone.a_ub)
        self._assert_matrix_equal(form.a_eq, clone.a_eq)
        np.testing.assert_array_equal(form.c, clone.c)
        np.testing.assert_array_equal(form.b_ub, clone.b_ub)
        np.testing.assert_array_equal(form.b_eq, clone.b_eq)

        # The round-tripped form solves to the same optimum (rebuilding its
        # own working matrix from scratch).
        again = solve_lp_form(clone, LpBackend.SIMPLEX)
        assert again.status is SolverStatus.OPTIMAL
        assert again.objective_value == pytest.approx(result.objective_value)

    def test_postsolve_round_trips_and_restores_identically(self):
        from repro.ilp.presolve import presolve_form

        model = self._model()
        # Fix a variable so presolve genuinely reduces and the postsolve
        # record is non-trivial.
        model.variables[3].lower = 2.0
        form = model.to_matrix()
        integer_mask = np.ones(form.num_variables, dtype=bool)
        result = presolve_form(form, integer_mask)
        assert result.feasible and result.postsolve is not None
        postsolve = result.postsolve

        # Populate the lazy node-row cache, then check it is dropped.
        lower, upper = form.bound_arrays()
        postsolve.reduce_bounds(lower, upper)
        clone = pickle.loads(pickle.dumps(postsolve))
        assert clone._node_rows is None

        x_reduced = np.zeros(clone.num_reduced_vars)
        np.testing.assert_array_equal(postsolve.restore(x_reduced), clone.restore(x_reduced))
        reduced_l, reduced_u = postsolve.reduce_bounds(lower, upper)
        clone_l, clone_u = clone.reduce_bounds(lower, upper)
        np.testing.assert_array_equal(reduced_l, clone_l)
        np.testing.assert_array_equal(reduced_u, clone_u)

    def test_simplex_basis_round_trips(self):
        solver = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-9), lp_backend=LpBackend.SIMPLEX
        )
        solution = solver.solve(self._model())
        basis = solution.root_basis
        assert basis is not None
        clone = pickle.loads(pickle.dumps(basis))
        np.testing.assert_array_equal(basis.basic, clone.basic)
        np.testing.assert_array_equal(basis.status, clone.status)
        assert clone.matches(basis.num_structural, basis.num_ub, basis.num_eq)

        # A warm start from the round-tripped basis behaves like the original.
        retry = self._model()
        retry.constraints[0].rhs *= 0.9
        warm = solver.solve(retry, warm_start=WarmStart(basis=clone))
        cold = solver.solve(retry.copy())
        assert warm.status is cold.status
        assert warm.objective_value == pytest.approx(cold.objective_value)

    def test_ilp_model_round_trips_without_memo_caches(self):
        model = self._model()
        form = model.to_matrix()  # populate the model-level memo cache
        assert model._matrix_cache

        clone = pickle.loads(pickle.dumps(model))
        assert clone._matrix_cache == {}
        assert clone._variable_arrays is None
        clone_form = clone.to_matrix()
        self._assert_matrix_equal(form.a_ub, clone_form.a_ub)
        self._assert_matrix_equal(form.a_eq, clone_form.a_eq)
        np.testing.assert_array_equal(form.c, clone_form.c)
        np.testing.assert_array_equal(form.b_ub, clone_form.b_ub)
        np.testing.assert_array_equal(form.b_eq, clone_form.b_eq)
        assert clone_form.bounds == form.bounds

        limits = SolverLimits(relative_gap=1e-9)
        original = BranchAndBoundSolver(limits=limits, lp_backend=LpBackend.SIMPLEX).solve(model)
        shipped = BranchAndBoundSolver(limits=limits, lp_backend=LpBackend.SIMPLEX).solve(clone)
        assert original.status is shipped.status
        np.testing.assert_array_equal(original.values, shipped.values)
        assert original.objective_value == shipped.objective_value
