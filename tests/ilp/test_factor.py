"""Property tests for the LU-factorised basis (:mod:`repro.ilp.factor`).

The invariants here are what lets the simplex trust FTRAN/BTRAN blindly:

* on a freshly factorised basis, ``ftran``/``btran``/``btran_row`` agree with
  the explicit inverse to 1e-9,
* after ``k`` product-form pivot updates the eta-file solves still agree with
  the explicit inverse of the *updated* basis matrix,
* forks answer for the basis at fork time, unaffected by later updates on
  either side, and
* the degenerate-cycling regression: Beale's classic cycling example
  terminates under devex pricing because the Bland fallback still engages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ilp.factor import BasisFactor
from repro.ilp.simplex import (
    PricingRule,
    SimplexStatus,
    solve_dense_simplex,
)


def _random_basis(rng: np.random.Generator, m: int) -> np.ndarray:
    """A well-conditioned random ``m×m`` basis matrix (diagonally boosted)."""
    matrix = rng.uniform(-1.0, 1.0, size=(m, m))
    matrix += np.eye(m) * (1.0 + np.abs(matrix).sum(axis=1))
    return matrix


class TestFactorAgreesWithExplicitInverse:
    @pytest.mark.parametrize("m", [1, 2, 5, 13, 40])
    def test_ftran_btran_btran_row_match_inverse(self, m: int) -> None:
        rng = np.random.default_rng(m)
        for _ in range(5):
            basis = _random_basis(rng, m)
            inverse = np.linalg.inv(basis)
            factor = BasisFactor.factorize(basis)
            assert factor is not None
            v = rng.uniform(-10.0, 10.0, size=m)
            np.testing.assert_allclose(factor.ftran(v), inverse @ v, atol=1e-9)
            np.testing.assert_allclose(factor.btran(v), v @ inverse, atol=1e-9)
            for r in range(m):
                np.testing.assert_allclose(
                    factor.btran_row(r), inverse[r], atol=1e-9
                )

    def test_identity_factor_is_the_identity(self) -> None:
        factor = BasisFactor.identity(6)
        v = np.arange(6, dtype=np.float64)
        np.testing.assert_allclose(factor.ftran(v), v)
        np.testing.assert_allclose(factor.btran(v), v)
        np.testing.assert_allclose(factor.btran_row(3), np.eye(6)[3])

    def test_zero_dimension(self) -> None:
        factor = BasisFactor.identity(0)
        assert factor.ftran(np.zeros(0)).shape == (0,)
        assert factor.btran(np.zeros(0)).shape == (0,)

    @pytest.mark.filterwarnings("ignore::scipy.linalg.LinAlgWarning")
    def test_singular_matrix_rejected(self) -> None:
        singular = np.ones((3, 3))
        assert BasisFactor.factorize(singular) is None

    def test_non_finite_matrix_rejected(self) -> None:
        bad = np.eye(3)
        bad[1, 1] = np.nan
        assert BasisFactor.factorize(bad) is None


class TestEtaFileConsistency:
    @pytest.mark.parametrize("m,k", [(4, 2), (8, 5), (20, 15), (30, 30)])
    def test_solves_agree_after_k_pivots(self, m: int, k: int) -> None:
        """After k product-form updates, the factor solves the updated basis."""
        rng = np.random.default_rng(1000 * m + k)
        basis_matrix = _random_basis(rng, m)
        factor = BasisFactor.factorize(basis_matrix)
        assert factor is not None

        current = basis_matrix.copy()
        applied = 0
        while applied < k:
            # A pivot replaces one basis column with a new entering column.
            row = int(rng.integers(m))
            column = rng.uniform(-5.0, 5.0, size=m)
            column[row] += 10.0  # keep the pivot element trustworthy
            w = factor.ftran(column)
            if not factor.update(row, w):
                continue
            current[:, row] = column
            applied += 1

        assert factor.eta_count == k
        inverse = np.linalg.inv(current)
        v = rng.uniform(-10.0, 10.0, size=m)
        np.testing.assert_allclose(factor.ftran(v), inverse @ v, atol=1e-7)
        np.testing.assert_allclose(factor.btran(v), v @ inverse, atol=1e-7)
        r = int(rng.integers(m))
        np.testing.assert_allclose(factor.btran_row(r), inverse[r], atol=1e-7)

    def test_update_refuses_tiny_pivot(self) -> None:
        factor = BasisFactor.factorize(np.eye(3))
        assert factor is not None
        w = np.array([1.0, 1e-12, 0.5])
        assert not factor.update(1, w)
        assert factor.eta_count == 0

    def test_fork_is_a_point_in_time_snapshot(self) -> None:
        rng = np.random.default_rng(7)
        m = 6
        basis_matrix = _random_basis(rng, m)
        factor = BasisFactor.factorize(basis_matrix)
        assert factor is not None
        column = rng.uniform(-2.0, 2.0, size=m)
        column[2] += 10.0
        assert factor.update(2, factor.ftran(column))

        fork = factor.fork()
        frozen = np.linalg.inv(
            np.column_stack(
                [basis_matrix[:, :2], column, basis_matrix[:, 3:]]
            )
        )
        # Advancing the parent does not disturb the fork (and vice versa).
        column2 = rng.uniform(-2.0, 2.0, size=m)
        column2[4] += 10.0
        assert factor.update(4, factor.ftran(column2))
        v = rng.uniform(-1.0, 1.0, size=m)
        np.testing.assert_allclose(fork.ftran(v), frozen @ v, atol=1e-9)
        assert fork.eta_count == 1
        assert factor.eta_count == 2


class TestBlandUnderDevex:
    def test_beale_cycling_example_terminates_under_devex(self) -> None:
        """Beale's cycling LP must reach optimality with devex pricing.

        Dantzig's rule cycles forever on this instance; the degenerate-streak
        detector must hand over to Bland's rule regardless of the configured
        pricing rule, and the solve must still finish at the true optimum.
        """
        c = np.array([-0.75, 150.0, -0.02, 6.0])
        a_ub = np.array(
            [
                [0.25, -60.0, -0.04, 9.0],
                [0.5, -90.0, -0.02, 3.0],
                [0.0, 0.0, 1.0, 0.0],
            ]
        )
        b_ub = np.array([0.0, 0.0, 1.0])
        bounds = [(0.0, None)] * 4
        for rule in (PricingRule.DANTZIG, PricingRule.DEVEX, PricingRule.STEEPEST_EDGE):
            result = solve_dense_simplex(
                c, a_ub, b_ub, np.empty((0, 4)), np.empty(0), bounds, pricing=rule
            )
            assert result.status is SimplexStatus.OPTIMAL, rule
            assert result.objective == pytest.approx(-0.05)

    def test_pricing_rules_agree_on_random_lps(self) -> None:
        """All pricing rules land on the same optimal objective."""
        rng = np.random.default_rng(21)
        for trial in range(8):
            n, mu = 12, 6
            c = rng.uniform(-5.0, 5.0, size=n)
            a_ub = rng.uniform(-1.0, 2.0, size=(mu, n))
            b_ub = rng.uniform(5.0, 20.0, size=mu)
            bounds = [(0.0, float(u)) for u in rng.uniform(1.0, 10.0, size=n)]
            objectives = {}
            for rule in (
                PricingRule.DANTZIG,
                PricingRule.DEVEX,
                PricingRule.STEEPEST_EDGE,
            ):
                result = solve_dense_simplex(
                    c, a_ub, b_ub, np.empty((0, n)), np.empty(0), bounds, pricing=rule
                )
                assert result.status is SimplexStatus.OPTIMAL, (trial, rule)
                objectives[rule] = result.objective
            values = list(objectives.values())
            assert max(values) - min(values) <= 1e-7 * max(1.0, abs(values[0]))
