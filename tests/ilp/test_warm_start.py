"""Tests for warm-started reoptimisation and revised-simplex edge cases.

Covers the basis-reuse protocol end to end (simplex → lp_backend →
branch-and-bound), the degenerate/unbounded/equality-only corners of the
bounded revised simplex, and the fallback path for stale or corrupted bases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.lp_backend import LpBackend, WarmStart, solve_lp_dense
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense
from repro.ilp.simplex import (
    SimplexBasis,
    SimplexStatus,
    solve_dense_simplex,
)
from repro.ilp.status import SolverStatus


def _knapsack_lp(n=6, seed=3):
    rng = np.random.default_rng(seed)
    c = -rng.integers(1, 10, n).astype(float)  # maximise value → minimise -value
    weights = rng.integers(1, 8, n).astype(float)
    a_ub = weights.reshape(1, -1)
    b_ub = np.array([float(weights.sum()) / 2.0])
    bounds = [(0.0, 1.0)] * n
    return c, a_ub, b_ub, np.empty((0, n)), np.empty(0), bounds


class TestWarmStartedReoptimisation:
    def test_warm_solve_matches_cold_after_bound_tightening(self):
        c, a_ub, b_ub, a_eq, b_eq, bounds = _knapsack_lp()
        cold_parent = solve_dense_simplex(c, a_ub, b_ub, a_eq, b_eq, bounds)
        assert cold_parent.status is SimplexStatus.OPTIMAL
        assert cold_parent.basis is not None

        # Branch: fix the most fractional variable down to 0 (a child node).
        fractional = int(np.argmax(np.abs(cold_parent.x - np.rint(cold_parent.x))))
        child_bounds = list(bounds)
        child_bounds[fractional] = (0.0, 0.0)

        warm = solve_dense_simplex(
            c, a_ub, b_ub, a_eq, b_eq, child_bounds, warm_start=cold_parent.basis
        )
        cold = solve_dense_simplex(c, a_ub, b_ub, a_eq, b_eq, child_bounds)
        assert warm.status is SimplexStatus.OPTIMAL
        assert warm.warm_started
        assert warm.objective == pytest.approx(cold.objective, abs=1e-8)
        assert warm.iterations <= cold.iterations

    def test_warm_solve_detects_child_infeasibility(self):
        # x + y <= 1; branching both variables up to >= 1 is infeasible.
        c = np.array([1.0, 1.0])
        a_ub = np.array([[1.0, 1.0]])
        b_ub = np.array([1.0])
        parent = solve_dense_simplex(
            c, a_ub, b_ub, np.empty((0, 2)), np.empty(0), [(0.0, 5.0), (0.0, 5.0)]
        )
        assert parent.status is SimplexStatus.OPTIMAL
        child = solve_dense_simplex(
            c, a_ub, b_ub, np.empty((0, 2)), np.empty(0),
            [(1.0, 5.0), (1.0, 5.0)], warm_start=parent.basis,
        )
        assert child.status is SimplexStatus.INFEASIBLE
        assert child.warm_started

    def test_stale_basis_falls_back_to_cold_solve(self):
        c, a_ub, b_ub, a_eq, b_eq, bounds = _knapsack_lp()
        # A basis exported from a completely different problem shape.
        stale = SimplexBasis(
            basic=np.array([0]),
            status=np.zeros(4, dtype=np.int8),
            num_structural=2,
            num_ub=1,
            num_eq=0,
        )
        result = solve_dense_simplex(c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=stale)
        assert result.status is SimplexStatus.OPTIMAL
        assert not result.warm_started

    def test_corrupted_basis_with_right_shape_falls_back(self):
        c, a_ub, b_ub, a_eq, b_eq, bounds = _knapsack_lp()
        n = len(c)
        ncols = n + 1 + 1  # structural + 1 slack + 1 artificial
        # Duplicate basic indices and inconsistent statuses.
        corrupted = SimplexBasis(
            basic=np.array([2]),
            status=np.full(ncols, 1, dtype=np.int8),  # nobody marked BASIC
            num_structural=n,
            num_ub=1,
            num_eq=0,
        )
        reference = solve_dense_simplex(c, a_ub, b_ub, a_eq, b_eq, bounds)
        result = solve_dense_simplex(c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=corrupted)
        assert result.status is SimplexStatus.OPTIMAL
        assert not result.warm_started
        assert result.objective == pytest.approx(reference.objective)

    def test_inconsistent_status_vector_falls_back(self):
        c, a_ub, b_ub, a_eq, b_eq, bounds = _knapsack_lp()
        n = len(c)
        ncols = n + 1 + 1
        # The BASIC marker sits on column 0 but the basic list names column 1.
        status = np.full(ncols, 1, dtype=np.int8)
        status[0] = 0
        bad = SimplexBasis(
            basic=np.array([1]), status=status, num_structural=n, num_ub=1, num_eq=0
        )
        result = solve_dense_simplex(c, a_ub, b_ub, a_eq, b_eq, bounds, warm_start=bad)
        assert result.status is SimplexStatus.OPTIMAL
        assert not result.warm_started


class TestSimplexEdgeCases:
    def test_beale_degenerate_cycling_example(self):
        """Beale's classic cycling LP: Dantzig pricing cycles, Bland must engage."""
        c = np.array([-0.75, 150.0, -0.02, 6.0])
        a_ub = np.array(
            [
                [0.25, -60.0, -1.0 / 25.0, 9.0],
                [0.5, -90.0, -1.0 / 50.0, 3.0],
                [0.0, 0.0, 1.0, 0.0],
            ]
        )
        b_ub = np.array([0.0, 0.0, 1.0])
        bounds = [(0.0, None)] * 4
        result = solve_dense_simplex(c, a_ub, b_ub, np.empty((0, 4)), np.empty(0), bounds)
        assert result.status is SimplexStatus.OPTIMAL
        assert result.objective == pytest.approx(-0.05)

    def test_unbounded_direction_blocked_by_finite_bounds(self):
        """The cost direction is unbounded in the cone but every variable is boxed."""
        c = np.array([-1.0, -2.0, -3.0])
        # A constraint that does not block growth (negative coefficients).
        a_ub = np.array([[-1.0, -1.0, -1.0]])
        b_ub = np.array([5.0])
        bounds = [(0.0, 4.0), (0.0, 3.0), (0.0, 2.0)]
        result = solve_dense_simplex(c, a_ub, b_ub, np.empty((0, 3)), np.empty(0), bounds)
        assert result.status is SimplexStatus.OPTIMAL
        assert result.x == pytest.approx([4.0, 3.0, 2.0])
        assert result.objective == pytest.approx(-16.0)

    def test_truly_unbounded_is_still_detected(self):
        c = np.array([-1.0, 0.0])
        a_ub = np.array([[0.0, 1.0]])
        b_ub = np.array([1.0])
        bounds = [(0.0, None), (0.0, None)]
        result = solve_dense_simplex(c, a_ub, b_ub, np.empty((0, 2)), np.empty(0), bounds)
        assert result.status is SimplexStatus.UNBOUNDED

    def test_equality_only_system(self):
        """No inequality rows at all: the basis is built purely from artificials."""
        c = np.array([2.0, 3.0, 1.0])
        a_eq = np.array([[1.0, 1.0, 1.0], [1.0, -1.0, 0.0]])
        b_eq = np.array([6.0, 1.0])
        bounds = [(0.0, None)] * 3
        result = solve_dense_simplex(c, np.empty((0, 3)), np.empty(0), a_eq, b_eq, bounds)
        assert result.status is SimplexStatus.OPTIMAL
        # x - y = 1, x + y + z = 6; cheapest is z as large as possible:
        # x = 1, y = 0, z = 5 → objective 2 + 0 + 5 = 7.
        assert result.objective == pytest.approx(7.0)
        assert result.x == pytest.approx([1.0, 0.0, 5.0])

    def test_equality_only_with_redundant_row(self):
        """A redundant equality leaves an artificial basic at zero — harmless."""
        c = np.array([1.0, 1.0])
        a_eq = np.array([[1.0, 1.0], [2.0, 2.0]])
        b_eq = np.array([4.0, 8.0])
        bounds = [(0.0, None), (0.0, None)]
        result = solve_dense_simplex(c, np.empty((0, 2)), np.empty(0), a_eq, b_eq, bounds)
        assert result.status is SimplexStatus.OPTIMAL
        assert result.objective == pytest.approx(4.0)

    def test_warm_start_after_redundant_row_solve(self):
        """A basis containing a (fixed-at-zero) artificial column warm-starts fine."""
        c = np.array([1.0, 1.0])
        a_eq = np.array([[1.0, 1.0], [2.0, 2.0]])
        b_eq = np.array([4.0, 8.0])
        parent = solve_dense_simplex(
            c, np.empty((0, 2)), np.empty(0), a_eq, b_eq, [(0.0, None), (0.0, None)]
        )
        child = solve_dense_simplex(
            c, np.empty((0, 2)), np.empty(0), a_eq, b_eq,
            [(3.0, None), (0.0, None)], warm_start=parent.basis,
        )
        assert child.status is SimplexStatus.OPTIMAL
        assert child.objective == pytest.approx(4.0)
        assert child.x[0] >= 3.0 - 1e-9


class TestBackendWarmStartProtocol:
    def test_lp_backend_passes_basis_through(self):
        model = IlpModel()
        model.add_variable("x", 0, 10, is_integer=False)
        model.add_variable("y", 0, 10, is_integer=False)
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.LE, 8)
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 3.0, 1: 1.0})
        dense = model.to_dense()

        cold = solve_lp_dense(dense, LpBackend.SIMPLEX)
        assert cold.status is SolverStatus.OPTIMAL
        assert cold.basis is not None
        assert not cold.warm_start_used

        lower, upper = dense.bound_arrays()
        upper = upper.copy()
        upper[0] = 5.0
        warm = solve_lp_dense(
            dense.with_bounds(lower, upper),
            LpBackend.SIMPLEX,
            warm_start=WarmStart(basis=cold.basis),
        )
        assert warm.status is SolverStatus.OPTIMAL
        assert warm.warm_start_used
        assert warm.objective_value == pytest.approx(5.0 * 3.0 + 3.0 * 1.0)

    def test_highs_backend_ignores_warm_start(self):
        model = IlpModel()
        model.add_variable("x", 0, 4, is_integer=False)
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 1.0})
        dense = model.to_dense()
        result = solve_lp_dense(dense, LpBackend.HIGHS, warm_start=WarmStart(basis=None))
        assert result.status is SolverStatus.OPTIMAL
        assert not result.warm_start_used
        assert result.basis is None


class TestBranchAndBoundBasisReuse:
    def _hard_knapsack(self, n=14, seed=11):
        rng = np.random.default_rng(seed)
        model = IlpModel("warm_knapsack")
        values = rng.integers(3, 30, n)
        weights = rng.integers(2, 15, n)
        for i in range(n):
            model.add_variable(f"x{i}", 0, 1)
        model.add_constraint(
            {i: float(w) for i, w in enumerate(weights)},
            ConstraintSense.LE,
            float(weights.sum()) * 0.4,
        )
        model.set_objective(
            ObjectiveSense.MAXIMIZE, {i: float(v) for i, v in enumerate(values)}
        )
        return model

    def test_warm_start_hits_accumulate_and_answers_match(self):
        model = self._hard_knapsack()
        limits = SolverLimits(relative_gap=1e-9)
        warm_solver = BranchAndBoundSolver(
            limits=limits, lp_backend=LpBackend.SIMPLEX, warm_start_lp=True,
            enable_rounding_heuristic=False,
        )
        cold_solver = BranchAndBoundSolver(
            limits=limits, lp_backend=LpBackend.SIMPLEX, warm_start_lp=False,
            enable_rounding_heuristic=False,
        )
        highs_solver = BranchAndBoundSolver(limits=limits, lp_backend=LpBackend.HIGHS)

        warm = warm_solver.solve(model)
        cold = cold_solver.solve(model)
        highs = highs_solver.solve(model)

        assert warm.status is SolverStatus.OPTIMAL
        assert warm.objective_value == pytest.approx(cold.objective_value)
        assert warm.objective_value == pytest.approx(highs.objective_value)

        assert warm.stats.warm_start_hits > 0
        assert cold.stats.warm_start_hits == 0
        # Every non-root node warm-starts from its parent's basis.
        if warm.stats.lp_solves > 1:
            assert warm.stats.warm_start_rate >= 0.5
        # Basis reuse must save pivots overall.
        assert warm.stats.simplex_iterations < cold.stats.simplex_iterations

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_warm_and_cold_trees_agree_on_random_knapsacks(self, seed):
        model = self._hard_knapsack(n=9, seed=seed)
        limits = SolverLimits(relative_gap=1e-9)
        warm = BranchAndBoundSolver(
            limits=limits, lp_backend=LpBackend.SIMPLEX, warm_start_lp=True
        ).solve(model)
        highs = BranchAndBoundSolver(limits=limits).solve(model)
        assert warm.status is highs.status
        if warm.status is SolverStatus.OPTIMAL:
            assert warm.objective_value == pytest.approx(highs.objective_value)


class TestDenseFormCaching:
    def test_to_dense_is_memoized_until_mutation(self):
        model = IlpModel()
        model.add_variable("x", 0, 5)
        model.add_constraint({0: 1.0}, ConstraintSense.LE, 4)
        first = model.to_dense()
        assert model.to_dense() is first

        model.add_constraint({0: 1.0}, ConstraintSense.GE, 1)
        second = model.to_dense()
        assert second is not first
        assert second.a_ub.shape[0] == 2

        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0})
        assert model.to_dense() is not second

        third = model.to_dense()
        model.add_variable("y", 0, 1)
        assert model.to_dense() is not third

    def test_invalidate_dense_cache_after_inplace_mutation(self):
        model = IlpModel()
        model.add_variable("x", 0, 5, is_integer=False)
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 1.0})
        dense = model.to_dense()
        lower, upper = dense.bound_arrays()
        assert upper[0] == pytest.approx(5.0)

        model.variables[0].upper = 2.0
        model.invalidate_dense_cache()
        lower, upper = model.to_dense().bound_arrays()
        assert upper[0] == pytest.approx(2.0)
