"""Tests for the ILP model container."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.ilp.model import ConstraintSense, IlpModel, ObjectiveSense, Variable


class TestVariables:
    def test_add_variable_assigns_index(self):
        model = IlpModel()
        x = model.add_variable("x")
        y = model.add_variable("y", lower=1, upper=3)
        assert (x.index, y.index) == (0, 1)
        assert model.num_variables == 2

    def test_duplicate_name_rejected(self):
        model = IlpModel()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_variable("x")

    def test_invalid_bounds_rejected(self):
        with pytest.raises(SolverError):
            Variable("x", lower=2.0, upper=1.0)

    def test_variable_by_name(self):
        model = IlpModel()
        model.add_variable("x")
        assert model.variable_by_name("x").index == 0
        with pytest.raises(SolverError):
            model.variable_by_name("missing")


class TestConstraints:
    def test_add_constraint_drops_zero_coefficients(self):
        model = IlpModel()
        model.add_variable("x")
        model.add_variable("y")
        constraint = model.add_constraint({0: 1.0, 1: 0.0}, ConstraintSense.LE, 5)
        assert constraint.coefficients == {0: 1.0}

    def test_unknown_variable_index_rejected(self):
        model = IlpModel()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_constraint({3: 1.0}, ConstraintSense.LE, 1)

    def test_constraint_evaluation_and_violation(self):
        model = IlpModel()
        model.add_variable("x")
        model.add_variable("y")
        le = model.add_constraint({0: 1.0, 1: 2.0}, ConstraintSense.LE, 5, name="le")
        ge = model.add_constraint({0: 1.0}, ConstraintSense.GE, 2, name="ge")
        eq = model.add_constraint({1: 1.0}, ConstraintSense.EQ, 1, name="eq")
        values = np.array([1.0, 1.0])
        assert le.evaluate(values) == 3.0
        assert le.is_satisfied(values)
        assert ge.violation(values) == 1.0
        assert eq.is_satisfied(values)
        assert not ge.is_satisfied(values)


class TestObjectiveAndFeasibility:
    def test_objective_evaluation(self):
        model = IlpModel()
        model.add_variable("x")
        model.add_variable("y")
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 2.0, 1: 3.0})
        assert model.objective_value(np.array([1.0, 2.0])) == 8.0

    def test_sense_better(self):
        assert ObjectiveSense.MINIMIZE.better(1.0, 2.0)
        assert ObjectiveSense.MAXIMIZE.better(2.0, 1.0)
        assert ObjectiveSense.MINIMIZE.worst_value == float("inf")

    def test_pure_feasibility_flag(self):
        model = IlpModel()
        model.add_variable("x")
        assert model.is_pure_feasibility
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0})
        assert not model.is_pure_feasibility

    def test_check_feasible(self):
        model = IlpModel()
        model.add_variable("x", lower=0, upper=2)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 1)
        assert model.check_feasible(np.array([1.0]))
        assert not model.check_feasible(np.array([0.0]))     # Constraint violated.
        assert not model.check_feasible(np.array([3.0]))     # Upper bound violated.
        assert not model.check_feasible(np.array([1.5]))     # Integrality violated.
        assert not model.check_feasible(np.array([1.0, 2.0]))  # Wrong shape.

    def test_total_violation(self):
        model = IlpModel()
        model.add_variable("x")
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 3)
        model.add_constraint({0: 1.0}, ConstraintSense.LE, 1)
        assert model.total_violation(np.array([2.0])) == 2.0


class TestDenseExportAndCopy:
    def test_dense_form_minimisation(self):
        model = IlpModel()
        model.add_variable("x", upper=4)
        model.add_variable("y")
        model.add_constraint({0: 1.0, 1: 1.0}, ConstraintSense.LE, 10)
        model.add_constraint({0: 1.0}, ConstraintSense.GE, 1)
        model.add_constraint({1: 2.0}, ConstraintSense.EQ, 4)
        model.set_objective(ObjectiveSense.MINIMIZE, {0: 1.0, 1: 5.0})
        dense = model.to_dense()
        assert dense.a_ub.shape == (2, 2)     # GE rows are negated into <= rows.
        assert dense.a_eq.shape == (1, 2)
        assert dense.bounds == [(0.0, 4), (0.0, None)]
        assert not dense.maximize
        assert dense.objective_from_min(7.0) == 7.0

    def test_dense_form_maximisation_negates(self):
        model = IlpModel()
        model.add_variable("x")
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 3.0})
        dense = model.to_dense()
        assert dense.c[0] == -3.0
        assert dense.objective_from_min(-6.0) == 6.0

    def test_copy_is_deep(self):
        model = IlpModel("original")
        model.add_variable("x", upper=1)
        model.add_constraint({0: 1.0}, ConstraintSense.LE, 1, name="cap")
        model.set_objective(ObjectiveSense.MAXIMIZE, {0: 1.0})
        clone = model.copy()
        clone.add_variable("y")
        clone.add_constraint({1: 1.0}, ConstraintSense.LE, 2)
        assert model.num_variables == 1
        assert model.num_constraints == 1
        assert clone.num_variables == 2
        assert repr(model).startswith("IlpModel")
