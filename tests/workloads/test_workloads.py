"""Tests for the workload generators (recipes, Galaxy, TPC-H)."""

import numpy as np
import pytest

from repro.core.direct import DirectEvaluator
from repro.core.validation import check_package
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.paql.validator import validate_query
from repro.workloads.galaxy import GALAXY_ATTRIBUTES, galaxy_table, galaxy_workload
from repro.workloads.recipes import balanced_meal_query, meal_planner_query, recipes_table
from repro.workloads.specs import Workload
from repro.workloads.tpch import TPCH_ATTRIBUTES, query_projection, tpch_table, tpch_workload


class TestRecipes:
    def test_deterministic_given_seed(self):
        assert recipes_table(50, seed=3).equals(recipes_table(50, seed=3))
        assert not recipes_table(50, seed=3).equals(recipes_table(50, seed=4))

    def test_schema_and_values(self):
        table = recipes_table(100, seed=1)
        assert table.num_rows == 100
        assert set(table.column("gluten")) <= {"free", "contains"}
        kcal = table.numeric_column("kcal")
        assert kcal.min() >= 0.3 and kcal.max() <= 1.4

    def test_queries_validate_against_schema(self):
        table = recipes_table(20, seed=1)
        validate_query(meal_planner_query(), table.schema)
        validate_query(balanced_meal_query(), table.schema)


class TestGalaxy:
    def test_deterministic_and_sized(self):
        table = galaxy_table(300, seed=2)
        assert table.num_rows == 300
        assert table.schema.names == GALAXY_ATTRIBUTES
        assert table.equals(galaxy_table(300, seed=2))

    def test_attribute_correlations_present(self):
        """Brighter galaxies (larger flux) must have smaller magnitudes —
        the latent-factor structure that makes centroid representatives useful."""
        table = galaxy_table(2000, seed=2)
        flux = table.numeric_column("petroFlux_r")
        magnitude = table.numeric_column("petroMag_r")
        correlation = np.corrcoef(np.log(flux), magnitude)[0, 1]
        assert correlation < -0.5

    def test_workload_has_seven_valid_queries(self):
        table = galaxy_table(300, seed=2)
        workload = galaxy_workload(table)
        assert workload.query_names == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"]
        for workload_query in workload.queries:
            validate_query(workload_query.query, table.schema)
            assert workload_query.attributes <= set(GALAXY_ATTRIBUTES)

    def test_workload_attributes_are_union(self):
        workload = galaxy_workload(galaxy_table(200, seed=2))
        union = set()
        for workload_query in workload.queries:
            union |= workload_query.attributes
        assert set(workload.workload_attributes) == union

    def test_queries_are_feasible_on_generated_data(self):
        table = galaxy_table(400, seed=2)
        workload = galaxy_workload(table)
        solver = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-3, node_limit=2000, time_limit_seconds=30)
        )
        evaluator = DirectEvaluator(solver=solver)
        for name in ("Q1", "Q3", "Q5"):
            query = workload.query(name).query
            package = evaluator.evaluate(table, query)
            assert check_package(package, query).feasible, name

    def test_query_lookup_errors(self):
        workload = galaxy_workload(galaxy_table(100, seed=2))
        with pytest.raises(KeyError):
            workload.query("Q99")


class TestTpch:
    def test_schema_and_null_blocks(self):
        table = tpch_table(500, seed=4)
        assert table.schema.names == TPCH_ATTRIBUTES
        # The outer-join structure leaves NULLs in every source-relation block.
        for column in ("quantity", "ordertotal", "retailprice", "supplycost", "acctbal"):
            null_fraction = table.null_mask(column).mean()
            assert 0.0 < null_fraction < 0.6

    def test_query_projection_drops_nulls(self):
        table = tpch_table(500, seed=4)
        workload = tpch_workload(table, seed=4)
        for workload_query in workload.queries:
            projection = query_projection(table, workload_query.query)
            assert 0 < projection.num_rows <= table.num_rows
            for attribute in workload_query.attributes:
                assert not projection.null_mask(attribute).any()

    def test_projection_sizes_differ_by_query(self):
        table = tpch_table(800, seed=4)
        workload = tpch_workload(table, seed=4)
        sizes = {
            q.name: query_projection(table, q.query).num_rows for q in workload.queries
        }
        assert max(sizes.values()) > 1.5 * min(sizes.values())

    def test_workload_has_seven_valid_queries(self):
        table = tpch_table(300, seed=4)
        workload = tpch_workload(table, seed=4)
        assert len(workload.queries) == 7
        for workload_query in workload.queries:
            validate_query(workload_query.query, table.schema)

    def test_bounds_deterministic_given_seed(self):
        table = tpch_table(300, seed=4)
        first = tpch_workload(table, seed=4)
        second = tpch_workload(table, seed=4)
        for one, two in zip(first.queries, second.queries):
            assert [c.lower for c in one.query.global_constraints] == [
                c.lower for c in two.query.global_constraints
            ]

    def test_sample_query_feasible(self):
        table = tpch_table(600, seed=4)
        workload = tpch_workload(table, seed=4)
        query = workload.query("Q5").query
        projection = query_projection(table, query)
        solver = BranchAndBoundSolver(limits=SolverLimits(relative_gap=1e-3, node_limit=2000))
        package = DirectEvaluator(solver=solver).evaluate(projection, query)
        assert check_package(package, query).feasible


class TestWorkloadSpec:
    def test_workload_dataclass_helpers(self):
        table = recipes_table(30, seed=1)
        workload = Workload("recipes", table, [])
        assert workload.workload_attributes == []
        assert workload.query_names == []
