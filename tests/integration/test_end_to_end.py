"""End-to-end integration tests across the whole pipeline.

These tests tie together the PaQL front-end, translation, solvers, partitioning
and both evaluation strategies on the benchmark workloads, checking the
invariants the paper relies on: every returned package is feasible, DIRECT is
optimal (matches the exhaustive oracle on small data), and SKETCHREFINE's
objective is bounded by DIRECT's.
"""

import numpy as np
import pytest

from repro import PackageQueryEngine
from repro.core.direct import DirectEvaluator
from repro.core.naive import ExhaustiveSearchEvaluator
from repro.core.sketchrefine import SketchRefineEvaluator
from repro.core.validation import check_package, objective_value
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.paql.ast import ObjectiveDirection
from repro.partition.quadtree import QuadTreePartitioner
from repro.workloads.galaxy import galaxy_table, galaxy_workload
from repro.workloads.tpch import query_projection, tpch_table, tpch_workload


def make_solver() -> BranchAndBoundSolver:
    return BranchAndBoundSolver(
        limits=SolverLimits(relative_gap=1e-4, node_limit=3000, time_limit_seconds=30)
    )


@pytest.fixture(scope="module")
def galaxy_setup():
    table = galaxy_table(500, seed=17)
    workload = galaxy_workload(table, seed=17)
    partitioning = QuadTreePartitioner(size_threshold=50).partition(
        table, workload.workload_attributes
    )
    return table, workload, partitioning


@pytest.fixture(scope="module")
def tpch_setup():
    table = tpch_table(700, seed=17)
    workload = tpch_workload(table, seed=17)
    return table, workload


class TestGalaxyWorkload:
    @pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"])
    def test_both_methods_return_feasible_packages(self, galaxy_setup, query_name):
        table, workload, partitioning = galaxy_setup
        query = workload.query(query_name).query
        direct = DirectEvaluator(solver=make_solver()).evaluate(table, query)
        sketch = SketchRefineEvaluator(solver=make_solver()).evaluate(table, query, partitioning)
        assert check_package(direct, query).feasible
        assert check_package(sketch, query).feasible

    @pytest.mark.parametrize("query_name", ["Q1", "Q5", "Q7"])
    def test_sketchrefine_never_beats_direct_by_construction(self, galaxy_setup, query_name):
        """DIRECT solves the full problem: its objective must be at least as
        good as SKETCHREFINE's (up to the solver's MIP gap)."""
        table, workload, partitioning = galaxy_setup
        query = workload.query(query_name).query
        direct_value = objective_value(
            DirectEvaluator(solver=make_solver()).evaluate(table, query), query
        )
        sketch_value = objective_value(
            SketchRefineEvaluator(solver=make_solver()).evaluate(table, query, partitioning), query
        )
        slack = 1e-3 * max(1.0, abs(direct_value))
        if query.objective.direction is ObjectiveDirection.MAXIMIZE:
            assert sketch_value <= direct_value + slack
        else:
            assert sketch_value >= direct_value - slack


class TestTpchWorkload:
    @pytest.mark.parametrize("query_name", ["Q1", "Q3", "Q5", "Q7"])
    def test_pipeline_on_null_projected_tables(self, tpch_setup, query_name):
        table, workload = tpch_setup
        workload_query = workload.query(query_name)
        projection = query_projection(table, workload_query.query)
        partitioning = QuadTreePartitioner(size_threshold=max(10, projection.num_rows // 10)).partition(
            projection, sorted(workload_query.attributes)
        )
        query = workload_query.query
        # Rebind the query to the projected relation name.
        from repro.bench.harness import restrict_workload_query

        query = restrict_workload_query(workload_query, projection.name).query
        direct = DirectEvaluator(solver=make_solver()).evaluate(projection, query)
        sketch = SketchRefineEvaluator(solver=make_solver()).evaluate(projection, query, partitioning)
        assert check_package(direct, query).feasible
        assert check_package(sketch, query).feasible


class TestDirectOptimality:
    def test_direct_matches_exhaustive_oracle_on_galaxy_sample(self):
        table = galaxy_table(18, seed=23)
        mean_redshift = float(np.mean(table.numeric_column("redshift")))
        from repro.paql.builder import query_over

        query = (
            query_over("galaxy")
            .no_repetition()
            .count_equals(3)
            .sum_at_most("redshift", mean_redshift * 4)
            .maximize_sum("petroFlux_r")
            .build()
        )
        exact = BranchAndBoundSolver(limits=SolverLimits(relative_gap=1e-9))
        direct = DirectEvaluator(solver=exact).evaluate(table, query)
        oracle = ExhaustiveSearchEvaluator(max_cardinality=3).evaluate(table, query)
        assert objective_value(direct, query) == pytest.approx(
            objective_value(oracle, query), rel=1e-6
        )


class TestEngineOnWorkloads:
    def test_engine_runs_galaxy_queries_through_both_paths(self, galaxy_setup):
        table, workload, partitioning = galaxy_setup
        engine = PackageQueryEngine(solver=make_solver())
        engine.register_table(table)
        engine.register_partitioning("galaxy", partitioning)
        query = workload.query("Q5").query
        direct_result = engine.execute(query, method="direct")
        sketch_result = engine.execute(query, method="sketchrefine")
        assert direct_result.feasible and sketch_result.feasible
        assert direct_result.objective >= sketch_result.objective - 1e-6  # maximisation
