"""Randomized differential test harness for the three evaluation strategies.

Every instance is generated from a single integer seed: a small random table
(integer-valued floats, so objective arithmetic is exact in float64) and a
random PaQL query with a strict COUNT, optional SUM bounds and a MIN/MAX
objective.  On each instance the harness asserts:

* NAIVE (exhaustive self-join enumeration) and DIRECT (ILP) agree exactly —
  same infeasibility verdict, and bitwise-equal optimal objectives;
* SKETCHREFINE, when it returns a package, returns a *feasible* one (checked
  by the independent :func:`check_package` oracle); a reported infeasibility
  must either be real (NAIVE agrees) or carry the paper's
  ``false_negative_possible`` flag;
* all of the above still holds after interleaved ``update_table`` deltas, and
  answers served by the result cache equal a ``cache="bypass"`` recompute;
* a crash-and-recover in the middle of an interleaved update/query stream
  (``test_differential_across_crash_recovery``) lands the catalog bitwise on
  the last committed version, never serves a stale cached answer, and the
  full differential keeps holding on the recovered catalog.

A failure is reprintable from its seed alone: the assertion message embeds
the seed and the generated PaQL text, and
``pytest "tests/integration/test_differential.py::test_differential[<seed>]"``
re-runs exactly that instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import PackageQueryEngine
from repro.core.validation import check_package
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.db.catalog import Database
from repro.db.wal import MemoryLogStorage, WalRecord, WriteAheadLog, encode_record
from repro.errors import InfeasiblePackageQueryError
from repro.paql.ast import PackageQuery
from repro.paql.builder import query_over
from repro.paql.pretty import format_paql
from repro.partition.maintenance import partitioning_signature

#: Number of seeded random instances exercised in CI.
NUM_INSTANCES = 55


def _random_table(rng: np.random.Generator) -> Table:
    num_rows = int(rng.integers(8, 13))
    schema = Schema.numeric(["a", "b"])
    return Table(
        schema,
        {
            "a": rng.integers(0, 21, num_rows).astype(np.float64),
            "b": rng.integers(0, 21, num_rows).astype(np.float64),
        },
        name="diff",
    )


def _random_query(rng: np.random.Generator, table: Table) -> PackageQuery:
    cardinality = int(rng.integers(2, 4))
    builder = query_over("diff").no_repetition().count_equals(cardinality)
    b_values = np.sort(table.numeric_column("b"))
    # Bound anchored to the data: the sum of k mid-range b values, widened or
    # tightened at random so both feasible and infeasible instances occur.
    anchor = float(b_values[: cardinality + 2].sum())
    kind = rng.random()
    if kind < 0.3:
        builder = builder.sum_at_most("b", anchor * float(rng.uniform(0.6, 1.6)))
    elif kind < 0.6:
        builder = builder.sum_at_least("b", anchor * float(rng.uniform(0.4, 1.2)))
    elif kind < 0.8:
        low = anchor * float(rng.uniform(0.3, 0.8))
        builder = builder.sum_between("b", low, low + anchor * float(rng.uniform(0.2, 1.0)))
    if rng.random() < 0.5:
        builder = builder.minimize_sum("a")
    else:
        builder = builder.maximize_sum("a")
    return builder.build()


def _random_delta(rng: np.random.Generator, table: Table):
    insert = [
        (float(rng.integers(0, 21)), float(rng.integers(0, 21)))
        for _ in range(int(rng.integers(1, 3)))
    ]
    num_delete = int(rng.integers(0, min(3, table.num_rows - 7) + 1))
    delete = rng.choice(table.num_rows, size=num_delete, replace=False)
    return insert, (delete if num_delete else None)


def _objective_or_infeasible(engine: PackageQueryEngine, query, method: str):
    """Evaluate and return ``(objective, feasible, exception)``."""
    try:
        result = engine.execute(query, method=method, cache="bypass")
    except InfeasiblePackageQueryError as exc:
        return float("nan"), False, exc
    return result.objective, True, None


def _context(seed: int, query, phase: str, test: str = "test_differential") -> str:
    return (
        f"[seed={seed}, {phase}] reproduce with: "
        f"pytest 'tests/integration/test_differential.py::{test}[{seed}]'\n"
        f"{format_paql(query)}"
    )


def _check_instance(
    engine: PackageQueryEngine,
    query,
    seed: int,
    phase: str,
    test: str = "test_differential",
) -> None:
    context = _context(seed, query, phase, test)

    naive_objective, naive_feasible, _ = _objective_or_infeasible(engine, query, "naive")
    direct_objective, direct_feasible, _ = _objective_or_infeasible(engine, query, "direct")

    assert naive_feasible == direct_feasible, (
        f"{context}\nNAIVE feasible={naive_feasible} but DIRECT feasible={direct_feasible}"
    )
    if naive_feasible:
        assert naive_objective == direct_objective, (
            f"{context}\nNAIVE objective {naive_objective!r} != DIRECT {direct_objective!r}"
        )

    # SKETCHREFINE: any returned package must pass the independent checker; a
    # claimed infeasibility must be real or flagged as possibly false.
    try:
        sketch = engine.execute(query, method="sketchrefine", cache="bypass")
    except InfeasiblePackageQueryError as exc:
        assert (not naive_feasible) or exc.false_negative_possible, (
            f"{context}\nSKETCHREFINE claimed a hard infeasibility on a feasible instance"
        )
    else:
        assert check_package(sketch.package, query).feasible, (
            f"{context}\nSKETCHREFINE returned an infeasible package"
        )

    # Cache differential: a served answer equals the bypass recompute.
    engine.execute(query, method="direct", cache="refresh")
    cached = engine.execute(query, method="direct")
    assert cached.details["cache"]["status"] == "hit", context
    if direct_feasible:
        assert cached.objective == direct_objective, (
            f"{context}\ncached DIRECT objective {cached.objective!r} "
            f"!= fresh {direct_objective!r}"
        )


#: Seeds for the serial-vs-parallel sweep (a strided subset of the full
#: differential population — each instance is re-evaluated at three worker
#: counts, so the sweep is deliberately smaller).
PARALLEL_SWEEP_SEEDS = tuple(range(0, NUM_INSTANCES, 5))

#: Worker counts the sweep compares; 1 is the serial reference.
PARALLEL_SWEEP_WORKERS = (1, 2, 4)


def _sketchrefine_outcome(engine: PackageQueryEngine, query):
    """SKETCHREFINE's full observable outcome for one evaluation.

    Captures everything the determinism contract covers: the exact package
    (row → multiplicity), the exact objective, the search-shape statistics,
    or — on infeasibility — the exception's identity-relevant fields.
    """
    try:
        result = engine.execute(query, method="sketchrefine", cache="bypass")
    except InfeasiblePackageQueryError as exc:
        return ("infeasible", str(exc), exc.false_negative_possible)
    stats = engine._sketchrefine.last_stats
    package = tuple(sorted(result.package.as_multiplicity_map().items()))
    return (
        "package",
        package,
        result.objective,
        stats.refine_queries,
        stats.refine_rounds,
        stats.merge_deferrals,
        stats.backtracks,
        stats.groups_in_sketch,
        stats.used_hybrid_sketch,
    )


@pytest.mark.parametrize("seed", PARALLEL_SWEEP_SEEDS)
def test_serial_parallel_equivalence(seed: int):
    """Parallel refine is bit-identical to serial at every worker count.

    For each seeded instance the same query runs through SKETCHREFINE with
    1, 2 and 4 workers: identical packages, identical objectives, identical
    search shape (rounds, merge deferrals, backtracks) — or identical
    infeasibility verdicts — are required, before and after a table delta.
    """
    rng = np.random.default_rng(1_000_003 * (seed + 1))
    table = _random_table(rng)
    query = _random_query(rng, table)
    insert, delete = _random_delta(np.random.default_rng(seed + 77), table)

    outcomes: dict[int, list] = {}
    for workers in PARALLEL_SWEEP_WORKERS:
        engine = PackageQueryEngine(workers=workers)
        engine.register_table(table, name="diff")
        engine.build_partitioning("diff", ["a", "b"], size_threshold=4)
        phases = [_sketchrefine_outcome(engine, query)]
        engine.update_table("diff", insert=insert, delete=delete)
        phases.append(_sketchrefine_outcome(engine, query))
        outcomes[workers] = phases

    reference = outcomes[PARALLEL_SWEEP_WORKERS[0]]
    for workers in PARALLEL_SWEEP_WORKERS[1:]:
        assert outcomes[workers] == reference, (
            f"[seed={seed}] SKETCHREFINE outcome diverged at workers={workers}:\n"
            f"serial:   {reference}\n"
            f"parallel: {outcomes[workers]}\n"
            f"{format_paql(query)}"
        )


@pytest.mark.parametrize("seed", range(NUM_INSTANCES))
def test_differential(seed: int):
    rng = np.random.default_rng(1_000_003 * (seed + 1))
    engine = PackageQueryEngine()
    table = _random_table(rng)
    engine.register_table(table, name="diff")
    engine.build_partitioning("diff", ["a", "b"], size_threshold=4)
    query = _random_query(rng, table)

    _check_instance(engine, query, seed, phase="initial")

    # Interleave one or two versioned deltas and re-run the whole comparison
    # on each new table version.
    for round_number in range(int(rng.integers(1, 3))):
        insert, delete = _random_delta(rng, engine.table("diff"))
        engine.update_table("diff", insert=insert, delete=delete)
        _check_instance(engine, query, seed, phase=f"after delta {round_number + 1}")


#: Seeds for the crash-recovery differential (a strided subset — each
#: instance runs the full three-method comparison twice plus a recovery).
CRASH_RECOVERY_SEEDS = tuple(range(0, NUM_INSTANCES, 3))


def _serve_or_infeasible(engine: PackageQueryEngine, query, cache: str):
    """``(objective, feasible, package_map)`` under the given cache mode."""
    try:
        result = engine.execute(query, method="direct", cache=cache)
    except InfeasiblePackageQueryError:
        return float("nan"), False, None
    return result.objective, True, tuple(sorted(result.package.as_multiplicity_map().items()))


@pytest.mark.parametrize("seed", CRASH_RECOVERY_SEEDS)
def test_differential_across_crash_recovery(seed: int):
    """Interleaved update/query, crash, recover, re-query — never stale.

    The catalog runs on a write-ahead log; the cache is warmed between
    updates.  The crash keeps only the log's durable bytes — in half the
    instances with a torn tail of an in-flight, never-fsynced commit
    appended — and recovery must (a) land tables and partitionings bitwise
    on the last committed version, (b) serve post-recovery cached answers
    that equal a bypass recompute, and (c) keep the full NAIVE/DIRECT/
    SKETCHREFINE differential holding on the recovered catalog.
    """
    rng = np.random.default_rng(1_000_003 * (seed + 1) + 13)
    storage = MemoryLogStorage()
    engine = PackageQueryEngine(database=Database(wal=WriteAheadLog(storage)))
    engine.register_table(_random_table(rng), name="diff")
    engine.build_partitioning("diff", ["a", "b"], size_threshold=4)
    query = _random_query(rng, engine.table("diff"))
    context = _context(seed, query, "crash-recover", "test_differential_across_crash_recovery")

    # Interleaved update/query stream, warming the cache along the way.
    for _ in range(int(rng.integers(1, 3))):
        insert, delete = _random_delta(rng, engine.table("diff"))
        engine.update_table("diff", insert=insert, delete=delete)
        _serve_or_infeasible(engine, query, cache="use")

    # Crash.  Durable log bytes survive; sometimes the crash cut an
    # in-flight commit short, leaving a torn tail replay must discard.
    durable = storage.durable
    if rng.random() < 0.5:
        in_flight = engine.table("diff").make_delta(insert=[(1.0, 2.0)])
        frame = encode_record(WalRecord.update("diff", in_flight, "maintain"))
        durable += frame[: int(rng.integers(1, len(frame)))]
    surviving_cache = engine.cache
    recovered = Database.recover(
        WriteAheadLog(MemoryLogStorage(durable)), caches=[surviving_cache]
    )

    # (a) Bitwise-exact recovery of the last committed version.
    assert recovered.table("diff").version == engine.table("diff").version, context
    assert recovered.table("diff").equals(engine.table("diff")), context
    assert partitioning_signature(recovered.partitioning("diff")) == (
        partitioning_signature(engine.database.partitioning("diff"))
    ), context

    # (b) Whatever the surviving cache serves equals a bypass recompute.
    restarted = PackageQueryEngine(database=recovered, cache=surviving_cache)
    served = _serve_or_infeasible(restarted, query, cache="use")
    fresh = _serve_or_infeasible(restarted, query, cache="bypass")
    assert served == fresh, (
        f"{context}\ncache served {served!r} after recovery but bypass says {fresh!r}"
    )

    # (c) The differential itself still holds, including after further
    # updates committed by the recovered catalog.
    _check_instance(
        restarted, query, seed, phase="post-recovery",
        test="test_differential_across_crash_recovery",
    )
    insert, delete = _random_delta(rng, restarted.table("diff"))
    restarted.update_table("diff", insert=insert, delete=delete)
    _check_instance(
        restarted, query, seed, phase="post-recovery delta",
        test="test_differential_across_crash_recovery",
    )


def test_harness_runs_enough_instances():
    """The acceptance criterion pins a floor on the differential coverage."""
    assert NUM_INSTANCES >= 50
