"""Property-based tests of the core invariants (hypothesis).

The properties exercised here are the ones the paper's correctness story rests
on:

* the PaQL→ILP translation preserves semantics — any feasible ILP solution
  converts back into a package that satisfies the original query, and DIRECT's
  objective equals the best objective found by brute force on tiny inputs;
* SKETCHREFINE only ever returns feasible packages, never better than DIRECT
  on maximisation (and never worse-than-allowed with a radius-limited
  partitioning);
* packages aggregate like multisets (combining packages adds their aggregates).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.direct import DirectEvaluator
from repro.core.naive import ExhaustiveSearchEvaluator
from repro.core.package import Package
from repro.core.sketchrefine import SketchRefineEvaluator
from repro.core.validation import check_package, objective_value
from repro.dataset.table import Table
from repro.errors import InfeasiblePackageQueryError
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.paql.ast import ObjectiveDirection
from repro.paql.builder import query_over
from repro.partition.quadtree import QuadTreePartitioner

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def exact_solver() -> BranchAndBoundSolver:
    return BranchAndBoundSolver(limits=SolverLimits(relative_gap=1e-9, node_limit=5000))


def random_table(data: st.DataObject, min_rows: int = 4, max_rows: int = 12) -> Table:
    num_rows = data.draw(st.integers(min_value=min_rows, max_value=max_rows), label="rows")
    seed = data.draw(st.integers(min_value=0, max_value=10_000), label="seed")
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "value": np.round(rng.uniform(1.0, 20.0, num_rows), 3),
            "cost": np.round(rng.uniform(1.0, 10.0, num_rows), 3),
            "weight": np.round(rng.uniform(0.5, 5.0, num_rows), 3),
        },
        name="items",
    )


def random_query(data: st.DataObject, table: Table):
    cardinality = data.draw(
        st.integers(min_value=1, max_value=min(4, table.num_rows)), label="cardinality"
    )
    maximize = data.draw(st.booleans(), label="maximize")
    weight = table.numeric_column("weight")
    budget_factor = data.draw(st.floats(min_value=0.8, max_value=2.0), label="budget")
    builder = (
        query_over("items")
        .no_repetition()
        .count_equals(cardinality)
        .sum_at_most("weight", float(weight.mean()) * cardinality * budget_factor)
    )
    if maximize:
        builder = builder.maximize_sum("value")
    else:
        builder = builder.minimize_sum("cost")
    return builder.build()


class TestTranslationSemantics:
    @_SETTINGS
    @given(data=st.data())
    def test_direct_is_optimal_and_feasible_on_random_instances(self, data):
        table = random_table(data)
        query = random_query(data, table)
        oracle = ExhaustiveSearchEvaluator(max_cardinality=4)
        try:
            oracle_package = oracle.evaluate(table, query)
        except InfeasiblePackageQueryError:
            with pytest.raises(InfeasiblePackageQueryError):
                DirectEvaluator(solver=exact_solver()).evaluate(table, query)
            return
        direct_package = DirectEvaluator(solver=exact_solver()).evaluate(table, query)
        assert check_package(direct_package, query).feasible
        assert objective_value(direct_package, query) == pytest.approx(
            objective_value(oracle_package, query), rel=1e-6, abs=1e-6
        )

    @_SETTINGS
    @given(data=st.data())
    def test_sketchrefine_feasibility_and_bound(self, data):
        table = random_table(data, min_rows=8, max_rows=20)
        query = random_query(data, table)
        partitioning = QuadTreePartitioner(size_threshold=max(2, table.num_rows // 3)).partition(
            table, ["value", "cost", "weight"]
        )
        try:
            direct_package = DirectEvaluator(solver=exact_solver()).evaluate(table, query)
        except InfeasiblePackageQueryError:
            return  # Nothing to compare against.
        try:
            sketch_package = SketchRefineEvaluator(solver=exact_solver()).evaluate(
                table, query, partitioning
            )
        except InfeasiblePackageQueryError as error:
            # False infeasibility is permitted by the theory (and flagged).
            assert error.false_negative_possible
            return
        assert check_package(sketch_package, query).feasible
        direct_value = objective_value(direct_package, query)
        sketch_value = objective_value(sketch_package, query)
        slack = 1e-6 * max(1.0, abs(direct_value))
        if query.objective.direction is ObjectiveDirection.MAXIMIZE:
            assert sketch_value <= direct_value + slack
        else:
            assert sketch_value >= direct_value - slack


class TestPackageAlgebra:
    @_SETTINGS
    @given(data=st.data())
    def test_combine_adds_aggregates(self, data):
        table = random_table(data, min_rows=5, max_rows=15)
        rng = np.random.default_rng(data.draw(st.integers(0, 1000), label="pkg_seed"))
        first = Package.from_multiplicity_map(
            table, {int(i): int(rng.integers(1, 3)) for i in rng.choice(table.num_rows, 3, replace=False)}
        )
        second = Package.from_multiplicity_map(
            table, {int(i): int(rng.integers(1, 3)) for i in rng.choice(table.num_rows, 2, replace=False)}
        )
        combined = first.combine(second)
        assert combined.count() == pytest.approx(first.count() + second.count())
        assert combined.sum("value") == pytest.approx(first.sum("value") + second.sum("value"))

    @_SETTINGS
    @given(data=st.data())
    def test_materialized_table_matches_aggregates(self, data):
        table = random_table(data)
        rng = np.random.default_rng(data.draw(st.integers(0, 1000), label="pkg_seed"))
        package = Package.from_multiplicity_map(
            table, {int(i): int(rng.integers(1, 4)) for i in range(min(3, table.num_rows))}
        )
        materialized = package.materialize()
        assert materialized.num_rows == package.cardinality
        assert float(materialized.numeric_column("cost").sum()) == pytest.approx(package.sum("cost"))


class TestPartitioningProperties:
    @_SETTINGS
    @given(data=st.data())
    def test_quadtree_is_a_partition_and_respects_tau(self, data):
        table = random_table(data, min_rows=10, max_rows=40)
        tau = data.draw(st.integers(min_value=2, max_value=10), label="tau")
        partitioning = QuadTreePartitioner(size_threshold=tau).partition(
            table, ["value", "cost"]
        )
        # Every row in exactly one group.
        assert partitioning.group_sizes().sum() == table.num_rows
        # Size threshold respected unless a group is degenerate (identical tuples).
        for gid in range(partitioning.num_groups):
            if partitioning.group_size(gid) > tau:
                rows = partitioning.group_rows(gid)
                matrix = table.numeric_matrix(["value", "cost"])[rows]
                assert np.allclose(matrix, matrix[0])

    @_SETTINGS
    @given(data=st.data())
    def test_group_radius_bounds_member_deviation(self, data):
        table = random_table(data, min_rows=10, max_rows=30)
        partitioning = QuadTreePartitioner(size_threshold=5).partition(table, ["value"])
        for gid in range(partitioning.num_groups):
            rows = partitioning.group_rows(gid)
            centroid = partitioning.representatives.numeric_column("value")[gid]
            deviations = np.abs(table.numeric_column("value")[rows] - centroid)
            assert deviations.max() <= partitioning.group_radius(gid) + 1e-9
