"""Per-checker fixture tests: positive hit, suppressed hit, clean file.

Each rule is exercised against three committed fixture files under
``fixtures/`` (parsed, never imported).  The violation fixture must produce
at least the expected number of findings — all under the rule's own name —
the suppressed fixture must produce zero findings *via* inline suppressions
(the suppressed counter proves the violations were actually seen), and the
clean fixture must be silent.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: rule → (per-rule option overrides for fixture files, min violation count,
#: min suppressed count in the suppressed fixture)
CASES: dict[str, tuple[dict[str, object], int, int]] = {
    "determinism": (
        {"time_scope": [], "rng_scope": [], "set_iteration_scope": []},
        7,  # time.time x2, random.random, np.random.rand, shuffle, 3 set-iters
        2,
    ),
    "pickle-safety": (
        {
            "payload_classes": {
                "FixtureTask": ["_plain_state"],
                "FixturePartial": [],
            }
        },
        3,  # FixtureTask._result_cache/_memo + FixturePartial._work_arrays
        2,
    ),
    "tolerance": (
        {"scope": []},
        4,  # name-pattern ==, literal !=, division ==, float() ==
        1,
    ),
    "stats-drift": (
        {},
        2,  # undeclared write (typo_hits) + never-written field
        2,
    ),
    "env-access": (
        {},
        5,  # os.environ.get, os.environ[], os.getenv, environ.get, getenv
        1,
    ),
    "api-boundary": (
        {},
        4,  # b_ub store, c[...] store, to_matrix-bound store, annotated store
        1,
    ),
}


def _lint(rule: str, fixture: Path, options: dict[str, object]):
    config = LintConfig(rules=[rule], options={rule: options}, use_baseline=False)
    return run_lint([fixture], config)


def _fixture(rule: str, kind: str) -> Path:
    path = FIXTURES / f"{rule.replace('-', '_')}_{kind}.py"
    assert path.exists(), f"missing fixture {path}"
    return path


@pytest.mark.parametrize("rule", sorted(CASES))
def test_violation_fixture_is_caught(rule: str) -> None:
    options, min_findings, _ = CASES[rule]
    report = _lint(rule, _fixture(rule, "violation"), options)
    assert len(report.findings) >= min_findings, report.format_text()
    assert {f.rule for f in report.findings} == {rule}
    # Every finding points into the fixture with a real location and scope.
    for finding in report.findings:
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize("rule", sorted(CASES))
def test_suppressed_fixture_is_silent_but_seen(rule: str) -> None:
    options, _, min_suppressed = CASES[rule]
    report = _lint(rule, _fixture(rule, "suppressed"), options)
    assert report.findings == [], report.format_text()
    assert report.suppressed >= min_suppressed


@pytest.mark.parametrize("rule", sorted(CASES))
def test_clean_fixture_is_silent(rule: str) -> None:
    options, _, _ = CASES[rule]
    report = _lint(rule, _fixture(rule, "clean"), options)
    assert report.findings == [], report.format_text()
    assert report.suppressed == 0


def test_all_six_rules_are_registered() -> None:
    from repro.analysis import all_checkers

    assert set(CASES) <= set(all_checkers())
    assert len(all_checkers()) >= 6
