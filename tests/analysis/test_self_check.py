"""Self-check: ``src/repro`` stays clean modulo the committed baseline.

Also "mutation-style" regressions: un-fixing the violations this PR fixed
(re-shipping the Constraint/Objective memo dicts, dropping the justified
suppression comments in validation.py) must make the lint fail again, which
proves the checkers actually guard those sites.
"""

from __future__ import annotations

import re
import shutil
from pathlib import Path

import pytest

from repro.analysis import LintConfig, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_src_repro_is_clean_modulo_baseline(monkeypatch: pytest.MonkeyPatch) -> None:
    # Finding paths (and the committed baseline's entries) are repo-relative.
    monkeypatch.chdir(REPO_ROOT)
    report = run_lint([Path("src/repro")])
    assert report.ok, "\n" + report.format_text()
    assert report.files_checked > 60
    assert len(report.rules_run) >= 6
    # The committed baseline stays minimal and fully live: every entry still
    # matches a real finding (no stale residue) and none exceed the budget.
    assert report.stale_baseline == []
    assert len(report.grandfathered) <= 5


def test_baseline_file_entries_are_justified() -> None:
    import json

    data = json.loads((REPO_ROOT / "repro-lint-baseline.json").read_text())
    assert len(data["entries"]) <= 5
    for entry in data["entries"]:
        assert len(entry["justification"].strip()) > 20


# -- mutation-style guards: un-fixing a fixed violation must fail the lint ------------


def _lint_single(path: Path, rule: str, options: dict[str, object]):
    config = LintConfig(rules=[rule], options={rule: options}, use_baseline=False)
    return run_lint([path], config)


def test_unfixing_coefficient_memo_pickling_fails_lint(tmp_path: Path) -> None:
    """Deleting the _coefficients reset from __getstate__ re-flags both classes."""
    source = (SRC / "ilp" / "model.py").read_text()
    mutated = source.replace('state["_coefficients"] = None', "pass")
    assert mutated != source  # the fix is present in the tree
    target = tmp_path / "model.py"
    target.write_text(mutated)

    report = _lint_single(target, "pickle-safety", {})
    flagged = {f.symbol for f in report.findings}
    assert any("Constraint" in s for s in flagged), report.format_text()
    assert any("Objective" in s for s in flagged), report.format_text()

    # And the real, fixed file is clean.
    assert _lint_single(SRC / "ilp" / "model.py", "pickle-safety", {}).grandfathered == []


def test_unsuppressing_validation_guards_fails_lint(tmp_path: Path) -> None:
    """Stripping the justified inline suppressions re-flags the exact-zero guards."""
    source = (SRC / "core" / "validation.py").read_text()
    mutated = re.sub(r"#\s*repro-lint:[^\n]*", "", source)
    assert mutated != source
    target = tmp_path / "validation.py"
    target.write_text(mutated)

    report = _lint_single(target, "tolerance", {"scope": []})
    assert len(report.findings) >= 2, report.format_text()

    # The committed file passes purely via suppressions (same scope, no baseline).
    clean = _lint_single(SRC / "core" / "validation.py", "tolerance", {"scope": []})
    assert clean.findings == []
    assert clean.suppressed >= 2


def test_reintroducing_wall_clock_fails_lint(tmp_path: Path) -> None:
    """A stray time.time() in the exec layer is caught (the PR 6 invariant)."""
    source = (SRC / "exec" / "tasks.py").read_text()
    mutated = source.replace("time.perf_counter()", "time.time()")
    assert mutated != source
    target = tmp_path / "tasks.py"
    target.write_text(mutated)

    report = _lint_single(target, "determinism", {"time_scope": []})
    assert any("time.time" in f.message for f in report.findings), report.format_text()


def test_new_cache_attribute_on_payload_class_flags(tmp_path: Path) -> None:
    """Growing a payload class a new memo attribute flags until handled."""
    source = (SRC / "ilp" / "matrix_form.py").read_text()
    mutated = source.replace(
        "def __getstate__(self) -> dict:",
        "def _grow(self):\n"
        "        self._row_memo = {}\n\n"
        "    def __getstate__(self) -> dict:",
        1,
    )
    assert mutated != source
    target = tmp_path / "matrix_form.py"
    target.write_text(mutated)

    report = _lint_single(target, "pickle-safety", {})
    assert any("_row_memo" in f.message for f in report.findings), report.format_text()
