"""Fixture: worker payload classes shipping caches across the pool boundary."""


class FixtureTask:
    """Payload class with cache-like attributes and no __getstate__ at all."""

    def __init__(self, payload):
        self.payload = payload
        self._result_cache = {}
        self._memo = None


class FixturePartial:
    """Payload class whose __getstate__ misses one derived attribute."""

    def __init__(self):
        self._cache = {}
        self._work_arrays = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache = {}
