"""Fixture: a sanctioned environment read, suppressed inline."""

import os


def debug_flag():
    return os.environ.get("REPRO_DEBUG")  # repro-lint: disable=env-access (debug-only)
