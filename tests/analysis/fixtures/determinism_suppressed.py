"""Fixture: determinism violations silenced by inline suppressions."""

import time


def sanctioned_wall_clock():
    # e.g. stamping a log record with real-world time is legitimate.
    return time.time()  # repro-lint: disable=determinism (log timestamp)


def sanctioned_set_iteration(groups):
    total = 0
    for gid in set(groups):  # repro-lint: disable=determinism (order-free sum)
        total += gid
    return total
