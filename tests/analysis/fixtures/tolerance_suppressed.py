"""Fixture: justified exact float comparison, suppressed inline."""


def structural_nonzero(values):
    return values != 0.0  # repro-lint: disable=tolerance (0.0 marks a non-entry)
