"""Fixture: configuration arrives as plain parameters, not ambient state."""


def configured(workers, scale=1.0):
    return workers * scale
