"""Fixture: violates every determinism sub-rule (never imported, only parsed)."""

import random
import time

import numpy as np
from random import shuffle


def wall_clock_timing():
    started = time.time()
    return time.time() - started


def hidden_global_rng():
    a = random.random()
    b = np.random.rand(3)
    items = [1, 2, 3]
    shuffle(items)
    return a, b, items


def hash_order_merge(groups):
    merged = []
    for gid in set(groups):
        merged.append(gid)
    for gid in {1, 2, 3}:
        merged.append(gid)
    return [g for g in frozenset(groups)]
