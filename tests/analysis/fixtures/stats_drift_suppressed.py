"""Fixture: stats drift silenced by inline suppressions."""

from dataclasses import dataclass


@dataclass
class FixtureStats:
    hits: int = 0
    external_only: float = 0.0  # repro-lint: disable=stats-drift (set by callers)


def record(stats):
    stats.hits += 1
    stats.adhoc_field = 1  # repro-lint: disable=stats-drift (scratch, not telemetry)
