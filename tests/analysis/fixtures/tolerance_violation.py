"""Fixture: bare float equality in solver-shaped code."""


def compare_objectives(objective_value, best_objective, x, y, a, b):
    exact_tie = objective_value == best_objective
    literal = x != 0.0
    ratio = a / b == 1
    converted = float(y) == x
    return exact_tie, literal, ratio, converted
