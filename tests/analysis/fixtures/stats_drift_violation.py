"""Fixture: stats class and its writers disagree in both directions."""

from dataclasses import dataclass


@dataclass
class FixtureStats:
    hits: int = 0
    misses: int = 0
    never_touched: float = 0.0


def record(stats):
    stats.hits += 1
    stats.misses = 2
    stats.typo_hits = 3
