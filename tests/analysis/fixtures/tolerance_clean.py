"""Fixture: tolerance-respecting comparisons (and legal integer equality)."""


def compare(objective_value, best_objective, tolerance, n, items):
    scale = max(1.0, abs(objective_value), abs(best_objective))
    close = abs(objective_value - best_objective) <= tolerance * scale
    ordered = objective_value <= best_objective
    empty = n == 0          # plain integer comparison stays legal
    count = len(items) == 3
    return close, ordered, empty, count
