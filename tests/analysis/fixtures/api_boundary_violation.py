"""Fixture: mutating a MatrixForm after construction."""


def tamper(form, model):
    form.b_ub = form.b_ub + 1.0
    form.c[0] = 2.0
    exported = model.to_matrix()
    exported.bounds = []
    return form, exported


def tamper_annotated(reduced: "MatrixForm"):
    reduced.maximize = True
    return reduced
