"""Fixture: every declared field written, every write declared."""

from dataclasses import dataclass


@dataclass
class FixtureStats:
    hits: int = 0
    misses: int = 0
    built_at_construction: int = 0


def record(stats):
    stats.hits += 1
    stats.misses = 2


def build():
    return FixtureStats(built_at_construction=1)
