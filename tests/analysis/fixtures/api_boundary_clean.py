"""Fixture: sanctioned MatrixForm use — read, derive views, share the cache."""


def inspect(form, lower, upper):
    narrowed = form.with_bounds(lower, upper)   # derive, don't mutate
    form.cache["working_matrix"] = object()     # the one sanctioned mutable slot
    return narrowed, form.num_variables, form.b_ub.sum()
