"""Fixture: payload classes that drop every derived attribute on pickling."""


class FixtureTask:
    def __init__(self, payload):
        self.payload = payload
        self._result_cache = {}
        self._memo = None
        self._plain_state = payload  # allow-listed in the test's config

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_result_cache"] = {}
        state.pop("_memo")
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._result_cache = {}
        self._memo = None


class FixturePartial:
    def __init__(self):
        self._cache = {}
        self._work_arrays = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache"] = {}
        state["_work_arrays"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
