"""Fixture: an in-place form edit, suppressed inline."""


def patch_rhs(form, rhs):
    form.b_ub = rhs  # repro-lint: disable=api-boundary (builder-local form)
    return form
