"""Fixture: ambient environment reads outside the config layer."""

import os
from os import environ, getenv


def scattered_reads():
    a = os.environ.get("REPRO_FIXTURE")
    b = os.environ["REPRO_FIXTURE"]
    c = os.getenv("REPRO_FIXTURE", "0")
    d = environ.get("REPRO_FIXTURE")
    e = getenv("REPRO_FIXTURE")
    return a, b, c, d, e
