"""Fixture: the sanctioned forms of clocks, RNG and iteration."""

import time

import numpy as np


def monotonic_timing():
    started = time.perf_counter()
    return time.perf_counter() - started, time.monotonic()


def seeded_rng(seed):
    rng = np.random.default_rng(seed)
    np.random.seed(seed)  # explicit reseed (the solve-task runner's guard)
    return rng.random(3)


def ordered_merge(groups):
    merged = []
    for gid in sorted(set(groups)):
        merged.append(gid)
    return merged
