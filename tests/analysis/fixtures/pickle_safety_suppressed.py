"""Fixture: pickle-safety violation silenced by a file-level suppression."""

# repro-lint: disable-file=pickle-safety (fixture classes never cross a pool)


class FixtureTask:
    def __init__(self, payload):
        self.payload = payload
        self._result_cache = {}
        self._memo = None
