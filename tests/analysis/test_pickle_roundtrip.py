"""Regression guard: every SolveTask-reachable class pickles faithfully.

The class list is read from the pickle-safety checker's ``payload_classes``
config — the same source of truth the static rule enforces — so the checker
and this runtime guard cannot drift apart: a class added to the checker must
be constructible and round-trippable here, and a class pickled by the solve
plane must be registered with the checker.

Beyond per-class round-trips, the end-to-end property is asserted: solving a
pickled-and-restored task yields results bit-identical to the original, and
every derived cache arrives empty on the far side.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np
import pytest

from repro.analysis.checkers.pickle_safety import PickleSafetyChecker
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.db.catalog import Database
from repro.db.wal import WalRecord
from repro.exec.tasks import SolveTask, SolveTaskResult, run_solve_task
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.lp_backend import LpBackend
from repro.ilp.model import (
    Constraint,
    ConstraintSense,
    IlpModel,
    Objective,
    ObjectiveSense,
    Variable,
)
from repro.ilp.matrix_form import MatrixForm
from repro.ilp.presolve import Postsolve, presolve_form
from repro.ilp.simplex import SimplexBasis, solve_form_simplex
from repro.ilp.status import Solution, SolveStats


def _small_model() -> IlpModel:
    model = IlpModel("pickle-guard")
    for i in range(4):
        model.add_variable(f"x{i}", upper=3)
    model.add_constraint(
        {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}, ConstraintSense.LE, 5, name="count"
    )
    model.add_constraint(
        {0: 2.0, 1: 1.0, 3: 4.0}, ConstraintSense.GE, 3, name="budget"
    )
    model.set_objective(ObjectiveSense.MAXIMIZE, {0: 3.0, 1: 1.0, 2: 2.0, 3: 0.5})
    return model


@pytest.fixture(scope="module")
def payload_instances() -> dict[str, Any]:
    """One live instance of every class the pickle-safety checker registers."""
    model = _small_model()
    # Materialise every lazy cache so the round-trip assertions are
    # meaningful: a fresh object with empty caches would pass trivially.
    _ = model.constraints[0].coefficients
    _ = model.objective.coefficients
    _ = model.bound_and_integrality_arrays()
    form = model.to_matrix()
    result = presolve_form(form)
    assert result.feasible and result.postsolve is not None

    solver = BranchAndBoundSolver(lp_backend=LpBackend.SIMPLEX)
    solution = solver.solve(model)
    assert solution.has_solution
    assert solution.root_basis is not None, "SIMPLEX solve should export a basis"

    task = SolveTask(
        task_id=7, model=model, solver=solver,
        warm_basis=solution.root_basis, rng_seed=11,
    )
    task_result = run_solve_task(task)

    # Durable-service payloads: a WAL update record and a pinned snapshot
    # view of a small live catalog.
    db = Database()
    db.create_table(
        Table(
            Schema.numeric(["x"]), {"x": np.arange(5, dtype=float)}, name="pickle_guard"
        )
    )
    snapshot = db.snapshot()
    wal_record = WalRecord.update(
        "pickle_guard",
        db.table("pickle_guard").make_delta(insert=[(9.0,)], delete=[0]),
        "maintain",
    )

    return {
        "SolveTask": task,
        "SolveTaskResult": task_result,
        "IlpModel": model,
        "Variable": model.variables[0],
        "Constraint": model.constraints[0],
        "Objective": model.objective,
        "MatrixForm": form,
        "Postsolve": result.postsolve,
        "SimplexBasis": solution.root_basis,
        "SolveStats": solution.stats,
        "Solution": solution,
        "BranchAndBoundSolver": solver,
        "SolverLimits": solver.limits,
        "WalRecord": wal_record,
        "SnapshotHandle": snapshot,
        "PinnedTable": snapshot.pins["pickle_guard"],
    }


def test_instance_list_matches_checker_class_list(
    payload_instances: dict[str, Any]
) -> None:
    """The checker's payload_classes and this test cover exactly the same set."""
    configured = set(PickleSafetyChecker.default_config["payload_classes"])
    assert configured == set(payload_instances), (
        "pickle-safety payload_classes and the round-trip guard drifted apart; "
        "update both together"
    )
    # Every name resolves to the class the instance actually is.
    for name, instance in payload_instances.items():
        assert type(instance).__name__ == name


def test_every_payload_class_roundtrips(payload_instances: dict[str, Any]) -> None:
    for name, instance in payload_instances.items():
        restored = pickle.loads(pickle.dumps(instance))
        assert type(restored) is type(instance), name


def test_derived_caches_arrive_empty(payload_instances: dict[str, Any]) -> None:
    model: IlpModel = pickle.loads(pickle.dumps(payload_instances["IlpModel"]))
    assert model._matrix_cache == {}
    assert model._variable_arrays is None
    assert model.constraints[0]._coefficients is None
    assert model.objective._coefficients is None

    form: MatrixForm = payload_instances["MatrixForm"]
    form.cache["scratch"] = object()
    restored_form: MatrixForm = pickle.loads(pickle.dumps(form))
    assert restored_form.cache == {}

    postsolve: Postsolve = pickle.loads(pickle.dumps(payload_instances["Postsolve"]))
    assert postsolve._node_rows is None
    assert postsolve._cutoff_rows is None

    # A restored snapshot handle is a detached, self-contained view: the
    # live manager (and through it the whole catalog) never ships.
    handle = pickle.loads(pickle.dumps(payload_instances["SnapshotHandle"]))
    assert handle._manager is None
    assert handle.versions() == payload_instances["SnapshotHandle"].versions()


def test_basis_factor_drops_on_pickle(payload_instances: dict[str, Any]) -> None:
    """An exported basis carries its factor fork locally but never pickles it."""
    form: MatrixForm = payload_instances["MatrixForm"]
    lp = solve_form_simplex(form)
    assert lp.basis is not None
    assert lp.basis._factor is not None, "small solve should export a factor fork"
    restored: SimplexBasis = pickle.loads(pickle.dumps(lp.basis))
    assert restored._factor is None
    # The stripped basis still warm-starts: the installer refactorises from
    # the basic index set instead of trusting a shipped factor.
    warm = solve_form_simplex(form, warm_start=restored)
    assert warm.warm_started
    assert warm.objective == lp.objective


def test_cutoff_rows_drop_on_pickle(payload_instances: dict[str, Any]) -> None:
    """The lazily-built objective-cutoff row never ships with a Postsolve."""
    postsolve: Postsolve = payload_instances["Postsolve"]
    postsolve.reduce_bounds(
        postsolve.orig_lower,
        postsolve.orig_upper,
        objective_cutoff_min=1e9,
    )
    assert postsolve._cutoff_rows is not None, "cutoff propagation should memoize its row"
    restored: Postsolve = pickle.loads(pickle.dumps(postsolve))
    assert restored._cutoff_rows is None


def test_restored_model_solves_identically(payload_instances: dict[str, Any]) -> None:
    model: IlpModel = payload_instances["IlpModel"]
    restored: IlpModel = pickle.loads(pickle.dumps(model))
    solver = BranchAndBoundSolver(lp_backend=LpBackend.SIMPLEX)
    original = solver.solve(model)
    again = solver.solve(restored)
    assert original.status is again.status
    assert original.objective_value == again.objective_value
    assert np.array_equal(original.values, again.values)
    # The dropped memo dicts rebuild to identical content.
    assert restored.constraints[0].coefficients == model.constraints[0].coefficients
    assert restored.objective.coefficients == model.objective.coefficients


def test_restored_task_executes_identically(payload_instances: dict[str, Any]) -> None:
    task: SolveTask = payload_instances["SolveTask"]
    reference: SolveTaskResult = payload_instances["SolveTaskResult"]
    restored_task: SolveTask = pickle.loads(pickle.dumps(task))
    rerun = run_solve_task(restored_task)
    assert rerun.task_id == reference.task_id
    assert rerun.status is reference.status
    assert rerun.objective_value == reference.objective_value
    assert np.array_equal(rerun.values, reference.values)
    assert rerun.warm_started == reference.warm_started
