"""Framework-level tests: suppressions, scoping, baseline, config, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding, LintConfig, run_lint
from repro.analysis.__main__ import main
from repro.analysis.core import (
    module_in_scope,
    module_name_for,
    parse_suppressions,
)

FIXTURES = Path(__file__).parent / "fixtures"


# -- suppression grammar ---------------------------------------------------------------


def test_line_suppression_parsing() -> None:
    sup = parse_suppressions(
        [
            "x = 1",
            "y = 2  # repro-lint: disable=tolerance (division guard)",
            "z = 3  # repro-lint: disable=tolerance, determinism",
        ]
    )
    assert sup.by_line[2] == {"tolerance"}
    assert sup.by_line[3] == {"tolerance", "determinism"}
    assert sup.file_level == set()


def test_file_level_suppression_parsing() -> None:
    sup = parse_suppressions(["# repro-lint: disable-file=pickle-safety (fixture)"])
    assert sup.file_level == {"pickle-safety"}
    finding = Finding("pickle-safety", "f.py", 99, 0, "msg")
    assert sup.is_suppressed(finding)


def test_disable_all_matches_any_rule() -> None:
    sup = parse_suppressions(["x = 1  # repro-lint: disable=all"])
    assert sup.is_suppressed(Finding("tolerance", "f.py", 1, 0, "msg"))
    assert sup.is_suppressed(Finding("determinism", "f.py", 1, 0, "msg"))


# -- module naming + scoping -----------------------------------------------------------


def test_module_name_anchors_at_repro_package() -> None:
    assert module_name_for(Path("src/repro/exec/pool.py")) == "repro.exec.pool"
    assert module_name_for(Path("src/repro/ilp/__init__.py")) == "repro.ilp"
    assert module_name_for(Path("tests/analysis/fixtures/x.py")) == "x"


def test_module_in_scope_prefix_semantics() -> None:
    assert module_in_scope("repro.exec.pool", ["repro.exec"])
    assert module_in_scope("repro.core.sketchrefine", ["repro.core.sketchrefine"])
    assert not module_in_scope("repro.core.sketchy", ["repro.core.sketchrefine"])
    assert module_in_scope("anything", [])  # empty scope = everywhere


# -- baseline --------------------------------------------------------------------------


def _finding(message: str = "msg", symbol: str = "f") -> Finding:
    return Finding("tolerance", "pkg/mod.py", 10, 2, message, symbol=symbol)


def test_baseline_split_new_grandfathered_stale() -> None:
    grandfathered = _finding("old violation")
    fresh = _finding("new violation")
    baseline = Baseline(
        entries=[
            BaselineEntry("tolerance", "pkg/mod.py", "f", "old violation", "why"),
            BaselineEntry("tolerance", "pkg/mod.py", "f", "long gone", "why"),
        ]
    )
    new, matched, stale = baseline.split([grandfathered, fresh])
    assert new == [fresh]
    assert matched == [grandfathered]
    assert [e.message for e in stale] == ["long gone"]


def test_baseline_matching_ignores_line_numbers() -> None:
    baseline = Baseline(
        entries=[BaselineEntry("tolerance", "pkg/mod.py", "f", "msg", "why")]
    )
    drifted = Finding("tolerance", "pkg/mod.py", 999, 0, "msg", symbol="f")
    new, matched, stale = baseline.split([drifted])
    assert new == [] and len(matched) == 1 and stale == []


def test_baseline_roundtrips_through_disk(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    original = Baseline(
        entries=[BaselineEntry("tolerance", "a.py", "f", "m", "justified")],
        path=path,
    )
    original.save()
    loaded = Baseline.load(path)
    assert loaded.entries == original.entries


def test_unjustified_baseline_entry_is_itself_a_finding(tmp_path: Path) -> None:
    fixture = FIXTURES / "tolerance_violation.py"
    report_raw = run_lint(
        [fixture],
        LintConfig(rules=["tolerance"], options={"tolerance": {"scope": []}},
                   use_baseline=False),
    )
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(report_raw.findings, path=baseline_path).save()

    config = LintConfig(
        rules=["tolerance"], options={"tolerance": {"scope": []}},
        baseline_path=baseline_path,
    )
    report = run_lint([fixture], config)
    # Every violation is grandfathered, but the TODO justifications flag.
    assert len(report.grandfathered) == len(report_raw.findings)
    assert report.findings and all(f.rule == "baseline" for f in report.findings)
    assert not report.ok

    # Filling in justifications makes the run clean.
    justified = Baseline.load(baseline_path)
    justified.entries = [
        BaselineEntry(e.rule, e.path, e.symbol, e.message, "fixture: intended")
        for e in justified.entries
    ]
    justified.save()
    assert run_lint([fixture], config).ok


# -- config ----------------------------------------------------------------------------


def test_config_from_file_merges_over_defaults(tmp_path: Path) -> None:
    config_path = tmp_path / "lint.json"
    config_path.write_text(
        json.dumps(
            {"rules": ["tolerance"], "options": {"tolerance": {"scope": []}}}
        )
    )
    config = LintConfig.from_file(config_path)
    report = run_lint([FIXTURES / "tolerance_violation.py"], config)
    assert report.rules_run == ["tolerance"]
    assert report.findings


def test_unknown_rule_is_rejected() -> None:
    with pytest.raises(ValueError, match="unknown lint rule"):
        run_lint([FIXTURES], LintConfig(rules=["no-such-rule"]))


# -- CLI -------------------------------------------------------------------------------


def test_cli_list_rules(capsys: pytest.CaptureFixture) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("pickle-safety", "determinism", "tolerance", "stats-drift",
                 "env-access", "api-boundary"):
        assert rule in out


def test_cli_text_and_exit_code_on_violations(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    config_path = tmp_path / "lint.json"
    config_path.write_text(
        json.dumps({"rules": ["env-access"], "options": {}})
    )
    fixture = str(FIXTURES / "env_access_violation.py")
    code = main([fixture, "--config", str(config_path), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "[env-access]" in out


def test_cli_json_output_is_machine_readable(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    config_path = tmp_path / "lint.json"
    config_path.write_text(
        json.dumps({"rules": ["env-access"], "options": {}})
    )
    fixture = str(FIXTURES / "env_access_violation.py")
    code = main([fixture, "--config", str(config_path), "--no-baseline",
                 "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    assert payload["findings"]
    assert {f["rule"] for f in payload["findings"]} == {"env-access"}


def test_cli_clean_run_exits_zero(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    config_path = tmp_path / "lint.json"
    config_path.write_text(json.dumps({"rules": ["env-access"]}))
    fixture = str(FIXTURES / "env_access_clean.py")
    assert main([fixture, "--config", str(config_path), "--no-baseline"]) == 0


def test_cli_update_baseline_then_enforce(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    config_path = tmp_path / "lint.json"
    config_path.write_text(
        json.dumps({"rules": ["env-access"], "options": {}})
    )
    baseline_path = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "env_access_violation.py")

    assert main([fixture, "--config", str(config_path),
                 "--baseline", str(baseline_path), "--update-baseline"]) == 0
    capsys.readouterr()

    # The TODO placeholders keep the gate failing until justified.
    assert main([fixture, "--config", str(config_path),
                 "--baseline", str(baseline_path)]) == 1
    capsys.readouterr()

    baseline = Baseline.load(baseline_path)
    baseline.entries = [
        BaselineEntry(e.rule, e.path, e.symbol, e.message, "fixture: sanctioned")
        for e in baseline.entries
    ]
    baseline.save()
    assert main([fixture, "--config", str(config_path),
                 "--baseline", str(baseline_path)]) == 0


def test_cli_missing_path_is_usage_error(capsys: pytest.CaptureFixture) -> None:
    assert main(["definitely/not/a/path.py"]) == 2
