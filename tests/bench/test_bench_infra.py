"""Tests for the benchmark harness infrastructure (results, runners, reporting)."""

import math

import pytest

from repro.bench.harness import (
    BenchmarkConfig,
    build_partitioning,
    restrict_workload_query,
    run_method,
    scaled_fractions,
)
from repro.bench.reporting import render_series, render_table, summarize_speedups
from repro.bench.results import ExperimentResult, MethodRun, QueryScalingResult
from repro.workloads.recipes import meal_planner_query, recipes_table
from repro.workloads.specs import WorkloadQuery


@pytest.fixture
def config() -> BenchmarkConfig:
    return BenchmarkConfig(
        galaxy_rows=100, tpch_rows=100, solver_time_limit=10.0,
        solver_node_limit=500, fractions=(0.5, 1.0),
    )


@pytest.fixture
def recipes_query() -> WorkloadQuery:
    return WorkloadQuery("meal", meal_planner_query(), "running example")


class TestResults:
    def _runs(self):
        return [
            MethodRun("d", "Q1", "direct", 10.0, objective=100.0, feasible=True,
                      parameters={"fraction": 1.0, "direction": "minimize"}),
            MethodRun("d", "Q1", "sketchrefine", 1.0, objective=120.0, feasible=True,
                      parameters={"fraction": 1.0, "direction": "minimize"}),
            MethodRun("d", "Q1", "direct", 4.0, objective=50.0, feasible=True,
                      parameters={"fraction": 0.5, "direction": "minimize"}),
            MethodRun("d", "Q1", "sketchrefine", 2.0, objective=50.0, feasible=True,
                      parameters={"fraction": 0.5, "direction": "minimize"}),
        ]

    def test_approximation_ratios(self):
        result = QueryScalingResult("d", "Q1", "fraction", self._runs())
        ratios = sorted(result.approximation_ratios())
        assert ratios == [pytest.approx(1.0), pytest.approx(1.2)]
        assert result.mean_approximation_ratio() == pytest.approx(1.1)
        assert result.median_approximation_ratio() == pytest.approx(1.1)

    def test_maximisation_ratio_orientation(self):
        runs = [
            MethodRun("d", "Q", "direct", 1.0, objective=100.0, feasible=True,
                      parameters={"fraction": 1.0, "direction": "maximize"}),
            MethodRun("d", "Q", "sketchrefine", 1.0, objective=80.0, feasible=True,
                      parameters={"fraction": 1.0, "direction": "maximize"}),
        ]
        result = QueryScalingResult("d", "Q", "fraction", runs)
        assert result.approximation_ratios() == [pytest.approx(1.25)]

    def test_speedup_geometric_mean(self):
        result = QueryScalingResult("d", "Q1", "fraction", self._runs())
        assert result.speedup() == pytest.approx(math.sqrt(10.0 * 2.0))

    def test_failed_runs_excluded(self):
        runs = self._runs()
        runs[0].failed = True
        result = QueryScalingResult("d", "Q1", "fraction", runs)
        assert len(result.approximation_ratios()) == 1

    def test_empty_results_give_nan(self):
        result = QueryScalingResult("d", "Q1", "fraction", [])
        assert math.isnan(result.mean_approximation_ratio())
        assert math.isnan(result.speedup())

    def test_experiment_result_lookup(self):
        experiment = ExperimentResult("exp", "test")
        experiment.query_results.append(QueryScalingResult("d", "Q1", "fraction"))
        assert experiment.result_for("Q1").query_name == "Q1"
        with pytest.raises(KeyError):
            experiment.result_for("Q9")
        experiment.add_table("rows", [{"a": 1}])
        assert experiment.tables["rows"] == [{"a": 1}]


class TestHarness:
    def test_scaled_fractions_are_nested_subsets(self):
        table = recipes_table(100, seed=1)
        subsets = scaled_fractions(table, (0.2, 0.6, 1.0), seed=0)
        assert len(subsets[0.2]) == 20
        assert len(subsets[1.0]) == 100
        assert set(subsets[0.2]) <= set(subsets[0.6]) <= set(subsets[1.0])

    def test_run_method_direct_success(self, config, recipes_query):
        table = recipes_table(60, seed=7)
        run = run_method(table, recipes_query, "direct", "recipes", config)
        assert run.succeeded
        assert run.feasible
        assert run.wall_seconds > 0
        assert run.parameters["direction"] == "minimize"

    def test_run_method_captures_failures(self, config, recipes_query):
        table = recipes_table(60, seed=7)
        capped = BenchmarkConfig(direct_max_variables=5, solver_time_limit=5.0)
        run = run_method(table, recipes_query, "direct", "recipes", capped)
        assert run.failed
        assert "SolverCapacityError" in run.failure_reason

    def test_run_method_sketchrefine_needs_partitioning(self, config, recipes_query):
        table = recipes_table(60, seed=7)
        run = run_method(table, recipes_query, "sketchrefine", "recipes", config)
        assert run.failed

    def test_run_method_sketchrefine_with_partitioning(self, config, recipes_query):
        table = recipes_table(60, seed=7)
        partitioning = build_partitioning(table, ["kcal", "saturated_fat"], config)
        run = run_method(
            table, recipes_query, "sketchrefine", "recipes", config, partitioning=partitioning
        )
        assert run.succeeded

    def test_unknown_method_recorded_as_failure(self, config, recipes_query):
        table = recipes_table(30, seed=7)
        run = run_method(table, recipes_query, "quantum", "recipes", config)
        assert run.failed

    def test_restrict_workload_query_renames_relation(self, recipes_query):
        renamed = restrict_workload_query(recipes_query, "other_relation")
        assert renamed.query.relation == "other_relation"
        assert renamed.name == recipes_query.name
        assert len(renamed.query.global_constraints) == len(recipes_query.query.global_constraints)


class TestReporting:
    def test_render_table_alignment_and_nulls(self):
        text = render_table(
            [{"a": 1.0, "b": None}, {"a": float("nan"), "b": "x"}], title="demo"
        )
        assert "demo" in text
        assert "—" in text

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])

    def test_render_series_and_speedups(self):
        runs = [
            MethodRun("d", "Q1", "direct", 10.0, objective=10.0, feasible=True,
                      parameters={"fraction": 1.0, "direction": "minimize"}),
            MethodRun("d", "Q1", "sketchrefine", 1.0, objective=10.0, feasible=True,
                      parameters={"fraction": 1.0, "direction": "minimize"}),
        ]
        result = QueryScalingResult("d", "Q1", "fraction", runs)
        series_text = render_series(result, "fraction")
        assert "Q1" in series_text and "approx ratio" in series_text
        summary = summarize_speedups([result])
        assert "speedup" in summary
