#!/usr/bin/env python3
"""Record the incremental-maintenance baseline as ``BENCH_partition.json``.

Measures what the dynamic data plane buys: on the 20k-row synthetic Galaxy
table, applies insert deltas of 1% and 10% of the base size and times
:class:`~repro.partition.maintenance.PartitionMaintainer` (nearest-group
assignment + delta-updated statistics + local re-splits) against the only
alternative the paper offers — a full re-partition of the new table with the
original quad-tree partitioner.  For each delta size it also verifies that
the maintained partitioning still satisfies the τ size condition and that
its group statistics match a from-scratch recompute, so the speedup is never
bought with a broken invariant.  The JSON is committed in-repo for a
trajectory across PRs, and CI re-generates it as a build artifact.

Run with::

    PYTHONPATH=src python benchmarks/partition_maintenance.py [--rows 20000] [--out BENCH_partition.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.partition.maintenance import PartitionMaintainer
from repro.partition.quadtree import QuadTreePartitioner
from repro.partition.representatives import compute_centroids, group_radii
from repro.workloads.galaxy import galaxy_table

ATTRIBUTES = ["petroMag_r", "redshift", "petroFlux_r"]

#: Insert-delta sizes measured, as fractions of the base table.
_DELTA_FRACTIONS = (0.01, 0.10)


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time (seconds) and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _stats_exact(partitioning) -> bool:
    fresh_centroids = compute_centroids(
        partitioning.table, partitioning.group_ids, partitioning.attributes
    )
    fresh_radii = group_radii(
        partitioning.table,
        partitioning.group_ids,
        partitioning.attributes,
        centroids=fresh_centroids,
    )
    return bool(
        np.allclose(partitioning.group_centroids(), fresh_centroids)
        and np.allclose(partitioning.group_radii_array(), fresh_radii)
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--tau", type=int, default=50)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_partition.json")
    args = parser.parse_args()

    table = galaxy_table(args.rows, seed=args.seed)
    pool = galaxy_table(max(1, int(args.rows * max(_DELTA_FRACTIONS))), seed=args.seed + 1)
    partitioner = QuadTreePartitioner(size_threshold=args.tau)

    build_seconds, base = _timed(lambda: partitioner.partition(table, ATTRIBUTES), 1)
    print(
        f"base build: {args.rows} rows -> {base.num_groups} groups "
        f"(tau={args.tau}) in {build_seconds * 1e3:.1f} ms"
    )

    maintainer = PartitionMaintainer()
    deltas = {}
    for fraction in _DELTA_FRACTIONS:
        count = int(args.rows * fraction)
        inserted = pool.head(count)
        new_table, delta = table.append_rows(inserted)

        maintain_seconds, (maintained, maintain_stats) = _timed(
            lambda: maintainer.maintain(base, new_table, delta), args.repeats
        )
        rebuild_seconds, rebuilt = _timed(
            lambda: partitioner.partition(new_table, ATTRIBUTES), args.repeats
        )

        entry = {
            "inserted_rows": count,
            "maintain_seconds": round(maintain_seconds, 6),
            "rebuild_seconds": round(rebuild_seconds, 6),
            "speedup": round(rebuild_seconds / maintain_seconds, 2),
            "groups_resplit": maintain_stats.groups_resplit,
            "groups_created": maintain_stats.groups_created,
            "maintained_groups": maintained.num_groups,
            "rebuilt_groups": rebuilt.num_groups,
            "satisfies_size_threshold": bool(maintained.satisfies_size_threshold(args.tau)),
            "stats_match_recompute": _stats_exact(maintained),
        }
        deltas[f"insert_{fraction:.0%}"] = entry
        print(
            f"insert {fraction:.0%} ({count} rows): maintain "
            f"{maintain_seconds * 1e3:.1f} ms vs rebuild {rebuild_seconds * 1e3:.1f} ms "
            f"({entry['speedup']}x), tau ok: {entry['satisfies_size_threshold']}, "
            f"stats exact: {entry['stats_match_recompute']}"
        )

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": args.rows,
        "tau": args.tau,
        "seed": args.seed,
        "attributes": ATTRIBUTES,
        "base_build_seconds": round(build_seconds, 6),
        "base_groups": base.num_groups,
        "deltas": deltas,
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
