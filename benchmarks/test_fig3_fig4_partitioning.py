"""Figures 3 and 4: per-query TPC-H table sizes and offline partitioning time.

Figure 3 is a table of the per-query tuple counts after projecting away rows
with NULLs on the query attributes; Figure 4 reports the one-time offline
partitioning cost for both datasets (workload attributes, τ = 10 %, no radius
condition).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import figure3_tpch_sizes, figure4_partitioning_time
from repro.bench.reporting import render_table


@pytest.mark.benchmark(group="figure3")
def test_figure3_tpch_query_table_sizes(benchmark, bench_config):
    result = benchmark.pedantic(
        figure3_tpch_sizes, kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    rows = result.tables["figure3_rows"]
    print()
    print(render_table(rows, title="Figure 3 — per-query table sizes (TPC-H)"))

    assert len(rows) == 7
    sizes = [r["tuples"] for r in rows]
    # Every projection is non-empty and no projection exceeds the pre-joined table.
    assert all(size > 0 for size in sizes)
    assert all(r["fraction_of_prejoined"] <= 1.0 for r in rows)
    # The paper's shape: the per-query sizes differ because different source
    # relations contribute different NULL patterns (Q5 is much smaller than Q1).
    assert max(sizes) > 1.5 * min(sizes)


@pytest.mark.benchmark(group="figure4")
def test_figure4_offline_partitioning_time(benchmark, bench_config):
    result = benchmark.pedantic(
        figure4_partitioning_time, kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    rows = result.tables["figure4_rows"]
    print()
    print(render_table(rows, title="Figure 4 — offline partitioning time"))

    assert {r["dataset"] for r in rows} == {"galaxy", "tpch"}
    for row in rows:
        # Partitioning terminates, respects the size threshold and is fast
        # relative to the workload it amortises over.
        assert row["num_groups"] >= 1
        assert row["partitioning_seconds"] < 60.0
