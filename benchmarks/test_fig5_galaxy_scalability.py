"""Figure 5: Galaxy scalability — DIRECT vs SKETCHREFINE across dataset fractions.

The paper's headline result: SKETCHREFINE answers the seven Galaxy package
queries about an order of magnitude faster than DIRECT, scales to sizes where
DIRECT fails, and keeps the mean/median approximation ratio low even though
the partitioning has no radius condition.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import figure5_galaxy_scalability
from repro.bench.reporting import render_series, summarize_speedups


@pytest.mark.benchmark(group="figure5")
def test_figure5_galaxy_scalability(benchmark, bench_config):
    result = benchmark.pedantic(
        figure5_galaxy_scalability, kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    print()
    for query_result in result.query_results:
        print(render_series(query_result, "fraction"))
        print()
    print(summarize_speedups(result.query_results))

    assert len(result.query_results) == 7

    speedups = []
    ratios = []
    for query_result in result.query_results:
        sketch_runs = [r for r in query_result.runs_for("sketchrefine")]
        # SKETCHREFINE must succeed at every dataset fraction.
        assert all(run.succeeded for run in sketch_runs), query_result.query_name
        speedup = query_result.speedup()
        if not math.isnan(speedup):
            speedups.append(speedup)
        ratio = query_result.mean_approximation_ratio()
        if not math.isnan(ratio):
            ratios.append(ratio)

    # Shape of the paper's result.  The full order-of-magnitude win needs
    # datasets large enough that DIRECT takes minutes (run with
    # REPRO_BENCH_SCALE>=4 to see it); at the default laptop scale we assert
    # the two observable halves of the claim: SKETCHREFINE clearly wins on the
    # queries that are hard for DIRECT, and it is never catastrophically
    # slower overall.
    assert speedups, "no query produced a comparable DIRECT run"
    assert max(speedups) > 1.3, "SKETCHREFINE should win on the hardest queries"
    geometric_mean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    assert geometric_mean > 0.4
    # ...and the packages it returns are of good quality (the paper reports
    # mean ratios between 1.0 and 2.8 on Galaxy).
    assert ratios
    assert sum(ratios) / len(ratios) < 4.0
