"""Figure 6: TPC-H scalability — DIRECT vs SKETCHREFINE across dataset fractions.

Same protocol as Figure 5 on the pre-joined TPC-H table (per-query NULL
projection, workload-attribute partitioning, τ = 10 %, no radius condition).
"""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import figure6_tpch_scalability
from repro.bench.reporting import render_series, summarize_speedups


@pytest.mark.benchmark(group="figure6")
def test_figure6_tpch_scalability(benchmark, bench_config):
    result = benchmark.pedantic(
        figure6_tpch_scalability, kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    print()
    for query_result in result.query_results:
        print(render_series(query_result, "fraction"))
        print()
    print(summarize_speedups(result.query_results))

    assert len(result.query_results) == 7

    all_sketch_succeeded = True
    ratios = []
    speedups = []
    for query_result in result.query_results:
        sketch_runs = query_result.runs_for("sketchrefine")
        all_sketch_succeeded &= all(run.succeeded for run in sketch_runs)
        ratio = query_result.mean_approximation_ratio()
        if not math.isnan(ratio):
            ratios.append(ratio)
        speedup = query_result.speedup()
        if not math.isnan(speedup):
            speedups.append(speedup)

    # SKETCHREFINE handles every query at every fraction.
    assert all_sketch_succeeded
    # Approximation quality stays in the paper's ballpark (TPC-H means were
    # 1.0–8.3, with one outlier minimisation query).
    assert ratios
    assert sum(ratios) / len(ratios) < 9.0
    # At the default laptop scale the TPC-H queries are easy enough that
    # DIRECT finishes in well under a second, so SKETCHREFINE's fixed overhead
    # dominates and the paper's ~10x speed-up only appears at larger scales
    # (REPRO_BENCH_SCALE>=4).  Here we assert it is not catastrophically
    # slower, which is the honest laptop-scale version of the claim.
    if speedups:
        geometric_mean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        assert geometric_mean > 0.2
