#!/usr/bin/env python3
"""Record a solver-performance baseline as ``BENCH_solver.json``.

Runs the Galaxy DIRECT workload through the SIMPLEX-backend branch-and-bound
twice — once with basis reuse (warm starts) and once forced cold — and records
node throughput, LP iteration counts and the warm-start hit rate.  It also
profiles the *constraint storage* of the matrix-form IR: for each query (and
for a larger ``--form-rows`` DIRECT instance) it reports the matrix nnz, the
bytes held by the chosen storage, and the bytes the PR 1 dense pipeline would
have held for the same model (per-constraint coefficient dicts + dense
``A_ub``/``A_eq`` + a dense simplex working matrix re-filled per solve).
Peak RSS of the whole run is recorded so memory regressions surface in the
uploaded CI artifact, not just throughput.  A presolve ablation solves the
ablation queries (including a flux-budget probe most of whose columns can
never enter a package) with root presolve on and off — objectives must match
— and profiles the root-LP columns/rows eliminated on the large DIRECT
instance.  A pricing ablation solves the solver queries under each fixed
pricing rule (Dantzig / devex / steepest-edge) — same LU-factorised basis,
different entering-column choice — asserting identical objectives and
recording per-rule pivot counts, and a large-instance profile repeats the
Dantzig-vs-devex comparison end-to-end at ``--form-rows``.  The JSON is
committed in-repo so future performance PRs have a trajectory to compare
against, and CI re-generates it as a build artifact on every push.

Run with::

    PYTHONPATH=src python benchmarks/solver_baseline.py [--rows 800] [--form-rows 20000] [--out BENCH_solver.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import scipy

from repro.core.translator import translate_query
from repro.db.expressions import col
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.lp_backend import LpBackend
from repro.ilp.presolve import presolve_form
from repro.ilp.simplex import PricingRule, _WorkMatrix
from repro.paql.builder import query_over
from repro.workloads.galaxy import galaxy_table, galaxy_workload

#: Queries solved per configuration; Q1 branches (fractional LP relaxations),
#: Q5 solves at the root, giving both tree shapes a voice in the baseline.
_QUERIES = ("Q1", "Q5")

#: Queries profiled for constraint storage: the whole workload's shapes plus
#: a filtered-aggregate probe whose indicator rows exercise the CSR path.
_STORAGE_QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "SPARSE_PROBE")


def _run_configuration(table, workload, warm_start_lp: bool, presolve: bool = True) -> dict:
    totals = {
        "nodes_explored": 0,
        "lp_solves": 0,
        "simplex_iterations": 0,
        "warm_start_hits": 0,
    }
    per_query = {}
    started = time.perf_counter()
    for name in _QUERIES:
        query = workload.query(name).query
        translation = translate_query(table, query)
        solver = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-3, node_limit=2000),
            lp_backend=LpBackend.SIMPLEX,
            warm_start_lp=warm_start_lp,
            presolve=presolve,
        )
        solution = solver.solve(translation.model)
        stats = solution.stats
        per_query[name] = {
            "status": solution.status.value,
            "objective": None if solution.objective_value != solution.objective_value
            else solution.objective_value,
            "nodes_explored": stats.nodes_explored,
            "lp_solves": stats.lp_solves,
            "simplex_iterations": stats.simplex_iterations,
            "warm_start_hits": stats.warm_start_hits,
            "refactorizations": stats.refactorizations,
            "eta_peak": stats.eta_peak,
            "pricing_rule": stats.pricing_rule,
        }
        for key in totals:
            totals[key] += getattr(stats, key)
    elapsed = time.perf_counter() - started
    return {
        "wall_seconds": round(elapsed, 4),
        "nodes_per_second": round(totals["nodes_explored"] / elapsed, 1),
        "warm_start_hit_rate": round(
            totals["warm_start_hits"] / max(1, totals["lp_solves"]), 4
        ),
        **totals,
        "per_query": per_query,
    }


def _dict_entry_bytes(num_entries: int) -> int:
    """Measured bytes of a ``{int: float}`` coefficient dict of this size.

    This is what the PR 1 pipeline stored per constraint; measured on a real
    dict (container + boxed keys/values) rather than theorised.
    """
    if num_entries == 0:
        return sys.getsizeof({})
    sample = {i + 1_000_000: float(i) + 0.5 for i in range(num_entries)}
    boxed = num_entries * (sys.getsizeof(1_000_000) + sys.getsizeof(0.5))
    return sys.getsizeof(sample) + boxed


def _work_matrix_bytes(work: _WorkMatrix) -> int:
    if work.sparse:
        return work.data.nbytes + work.indices.nbytes + work.indptr.nbytes
    return work.a.nbytes


def _sparse_probe_query(table):
    """A Galaxy query whose constraint rows are genuinely sparse.

    Filtered COUNT aggregates translate to 0/1 indicator rows (non-zero only
    for the tuples matching the filter), so unlike the plain COUNT/SUM rows of
    Q1–Q7 this exercises the CSR storage path of the matrix form.
    """
    redshift = table.numeric_column("redshift")
    radius = table.numeric_column("petroRad_r")
    nearby = float(np.quantile(redshift, 0.15))
    giant = float(np.quantile(radius, 0.92))
    return (
        query_over("galaxy", name="galaxy_sparse_probe")
        .no_repetition()
        .count_equals(12)
        .filtered_count_at_least(col("redshift") < nearby, 4)
        .filtered_count_at_most(col("petroRad_r") > giant, 2)
        .compare_counts(col("redshift") < nearby, col("petroRad_r") > giant)
        .maximize_sum("petroFlux_r")
        .build()
    )


def _presolve_probe_query(table):
    """A Galaxy query presolve can substantially reduce.

    ``petroFlux_r`` is heavy-tailed, so a total-flux budget makes the
    brightest tuples individually infeasible, and the "no saturated objects"
    filtered count is an indicator row whose every column fixes to zero —
    the classic DIRECT situation where most of the table can never enter an
    optimal package.  The objective is decoupled from the budgeted column so
    the ablation solves to proven optimality in both configurations.
    """
    flux = table.numeric_column("petroFlux_r")
    bright_cut = float(np.quantile(flux, 0.85))
    budget = float(np.quantile(flux, 0.5)) * 8 * 1.5
    return (
        query_over("galaxy", name="galaxy_presolve_probe")
        .no_repetition()
        .count_equals(8)
        .filtered_count_at_most(col("petroFlux_r") > bright_cut, 0)
        .sum_at_most("petroFlux_r", budget)
        .minimize_sum("extinction_r")
        .build()
    )


#: Queries in the presolve ablation; the probe plus the two solver queries.
_PRESOLVE_QUERIES = ("Q1", "Q5", "PRESOLVE_PROBE")


def _ablation_query(table, workload, name):
    if name == "PRESOLVE_PROBE":
        return _presolve_probe_query(table)
    return workload.query(name).query


def _profile_root_reduction(table, workload, query_names) -> dict:
    """Root-LP size before/after presolve (with integrality) per query."""
    per_query = {}
    for name in query_names:
        model = translate_query(table, _ablation_query(table, workload, name)).model
        form = model.to_matrix()
        integer_mask = model.bound_and_integrality_arrays()[2]
        reduction = presolve_form(form, integer_mask=integer_mask)
        rows_before = int(form.a_ub.shape[0] + form.a_eq.shape[0])
        entry = {
            "columns": form.num_variables,
            "rows": rows_before,
            "feasible": reduction.feasible,
            "presolve_ms": round(reduction.stats.presolve_ms, 3),
            "passes": reduction.stats.passes,
        }
        if reduction.feasible:
            entry.update(
                columns_after=reduction.form.num_variables,
                rows_after=int(
                    reduction.form.a_ub.shape[0] + reduction.form.a_eq.shape[0]
                ),
                vars_fixed=reduction.stats.vars_fixed,
                rows_removed=reduction.stats.rows_removed,
                column_reduction=round(
                    1.0 - reduction.form.num_variables / max(1, form.num_variables), 4
                ),
            )
        per_query[name] = entry
    return per_query


def _presolve_ablation(table, workload) -> dict:
    """Solve the ablation queries with presolve on and off; objectives must match."""
    configurations = {}
    for presolve in (True, False):
        per_query = {}
        started = time.perf_counter()
        for name in _PRESOLVE_QUERIES:
            translation = translate_query(table, _ablation_query(table, workload, name))
            # Solved to (near-)proven optimality, unlike the throughput runs:
            # the ablation's point is that presolve must not change the answer.
            solver = BranchAndBoundSolver(
                limits=SolverLimits(relative_gap=1e-9, node_limit=50_000),
                lp_backend=LpBackend.SIMPLEX,
                presolve=presolve,
            )
            solution = solver.solve(translation.model)
            per_query[name] = {
                "status": solution.status.value,
                "objective": None
                if solution.objective_value != solution.objective_value
                else round(solution.objective_value, 6),
                "nodes_explored": solution.stats.nodes_explored,
                "lp_solves": solution.stats.lp_solves,
                "simplex_iterations": solution.stats.simplex_iterations,
                "vars_fixed": solution.stats.vars_fixed,
                "rows_removed": solution.stats.rows_removed,
                "presolve_ms": round(solution.stats.presolve_ms, 3),
            }
        configurations["on" if presolve else "off"] = {
            "wall_seconds": round(time.perf_counter() - started, 4),
            "per_query": per_query,
        }
    matches = all(
        configurations["on"]["per_query"][name]["status"]
        == configurations["off"]["per_query"][name]["status"]
        and (
            configurations["on"]["per_query"][name]["objective"] is None
            or abs(
                configurations["on"]["per_query"][name]["objective"]
                - configurations["off"]["per_query"][name]["objective"]
            )
            <= 1e-4 * max(1.0, abs(configurations["off"]["per_query"][name]["objective"]))
        )
        for name in _PRESOLVE_QUERIES
    )
    configurations["objectives_match"] = matches
    return configurations


#: Pricing rules compared by the ablation.  AUTO is not listed because it
#: resolves to one of these depending on column count; the ablation's point
#: is the head-to-head pivot-count comparison at fixed rules.
_PRICING_RULES = (PricingRule.DANTZIG, PricingRule.DEVEX, PricingRule.STEEPEST_EDGE)

#: Queries in the 20k-row large-instance solve profile.
_LARGE_SOLVE_QUERIES = ("Q1", "Q5")


def _solve_queries_with_pricing(table, workload, query_names, rules) -> dict:
    """Solve each query under each fixed pricing rule; objectives must agree.

    Every rule prices from the same LU-factorised basis, so the only degree
    of freedom is *which* improving column enters — all rules must land on
    an identical objective, and the interesting output is the pivot count.
    """
    configurations = {}
    for rule in rules:
        per_query = {}
        started = time.perf_counter()
        nodes = 0
        for name in query_names:
            translation = translate_query(table, workload.query(name).query)
            solver = BranchAndBoundSolver(
                limits=SolverLimits(relative_gap=1e-3, node_limit=2000),
                lp_backend=LpBackend.SIMPLEX,
                pricing=rule,
            )
            solution = solver.solve(translation.model)
            stats = solution.stats
            nodes += stats.nodes_explored
            per_query[name] = {
                "status": solution.status.value,
                "objective": None
                if solution.objective_value != solution.objective_value
                else solution.objective_value,
                "nodes_explored": stats.nodes_explored,
                "lp_solves": stats.lp_solves,
                "simplex_iterations": stats.simplex_iterations,
                "refactorizations": stats.refactorizations,
                "eta_peak": stats.eta_peak,
                "pricing_rule": stats.pricing_rule,
            }
        elapsed = time.perf_counter() - started
        configurations[rule.value] = {
            "wall_seconds": round(elapsed, 4),
            "nodes_per_second": round(nodes / elapsed, 1),
            "simplex_iterations": sum(
                q["simplex_iterations"] for q in per_query.values()
            ),
            "per_query": per_query,
        }
    reference = rules[0].value
    matches = all(
        configurations[rule.value]["per_query"][name]["status"]
        == configurations[reference]["per_query"][name]["status"]
        and configurations[rule.value]["per_query"][name]["objective"]
        == configurations[reference]["per_query"][name]["objective"]
        for rule in rules[1:]
        for name in query_names
    )
    configurations["objectives_match"] = matches
    return configurations


def _pricing_ablation(table, workload) -> dict:
    """Dantzig vs devex vs steepest-edge pivot counts on the solver queries."""
    return _solve_queries_with_pricing(table, workload, _QUERIES, _PRICING_RULES)


def _large_solve_profile(table, workload) -> dict:
    """End-to-end solves on the --form-rows instance, per pricing rule.

    At 20k columns AUTO already selects devex; solving under the fixed rules
    shows what that choice buys (and that the answers are bit-identical).
    Steepest-edge is excluded: its exact ratios need one FTRAN per probed
    column, which is not competitive at this width and would dominate the
    benchmark's wall time.
    """
    return _solve_queries_with_pricing(
        table, workload, _LARGE_SOLVE_QUERIES,
        (PricingRule.DANTZIG, PricingRule.DEVEX),
    )


def _profile_storage(table, workload, query_names) -> dict:
    """Constraint-storage accounting: matrix-form pipeline vs the dense baseline."""
    per_query = {}
    for name in query_names:
        if name == "SPARSE_PROBE":
            query = _sparse_probe_query(table)
        else:
            query = workload.query(name).query
        model = translate_query(table, query).model
        form = model.to_matrix()
        work = _WorkMatrix(form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq)

        n = model.num_variables
        rows = model.num_constraints
        nnz = form.nnz
        model_bytes = sum(c.indices.nbytes + c.values.nbytes for c in model.constraints)
        now_total = model_bytes + form.constraint_storage_bytes() + _work_matrix_bytes(work)

        # PR 1 dense baseline for the identical model: one coefficient dict per
        # constraint, dense A_ub/A_eq, and the dense m x (n + mu + m) working
        # matrix the simplex re-filled on every solve.
        baseline_dicts = sum(_dict_entry_bytes(c.nnz) for c in model.constraints)
        # GE rows land in a_ub, so the dense matrices cover every row.
        baseline_matrices = form.dense_storage_bytes()
        mu = form.a_ub.shape[0]
        baseline_work = work.m * (n + mu + work.m) * 8
        baseline_total = baseline_dicts + baseline_matrices + baseline_work

        per_query[name] = {
            "variables": n,
            "constraint_rows": rows,
            "nnz": nnz,
            "storage": "csr" if form.is_sparse else "dense",
            "form_bytes": form.constraint_storage_bytes(),
            "form_sparse_bytes": form.sparse_storage_bytes(),
            "form_dense_bytes": form.dense_storage_bytes(),
            "model_coefficient_bytes": model_bytes,
            "work_matrix_bytes": _work_matrix_bytes(work),
            "constraint_storage_bytes": now_total,
            "dense_baseline_bytes": baseline_total,
            "reduction_vs_dense_baseline": round(1.0 - now_total / baseline_total, 4),
        }
    totals = {
        "nnz": sum(q["nnz"] for q in per_query.values()),
        "constraint_storage_bytes": sum(
            q["constraint_storage_bytes"] for q in per_query.values()
        ),
        "dense_baseline_bytes": sum(q["dense_baseline_bytes"] for q in per_query.values()),
    }
    totals["reduction_vs_dense_baseline"] = round(
        1.0 - totals["constraint_storage_bytes"] / totals["dense_baseline_bytes"], 4
    )
    return {"per_query": per_query, **totals}


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process (bytes), where available."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    return peak * 1024 if sys.platform.startswith("linux") else peak


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=800, help="Galaxy table size")
    parser.add_argument(
        "--form-rows", type=int, default=20_000,
        help="Galaxy table size for the large-instance constraint-storage profile",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="BENCH_solver.json", help="output path")
    args = parser.parse_args()

    table = galaxy_table(args.rows, seed=args.seed)
    workload = galaxy_workload(table, seed=args.seed)

    warm = _run_configuration(table, workload, warm_start_lp=True)
    cold = _run_configuration(table, workload, warm_start_lp=False)
    storage = _profile_storage(table, workload, _STORAGE_QUERIES)
    presolve_solves = _presolve_ablation(table, workload)
    pricing = _pricing_ablation(table, workload)

    large_table = galaxy_table(args.form_rows, seed=args.seed)
    large_workload = galaxy_workload(large_table, seed=args.seed)
    large_storage = _profile_storage(large_table, large_workload, _STORAGE_QUERIES)
    presolve_root_large = _profile_root_reduction(
        large_table, large_workload, _PRESOLVE_QUERIES
    )
    large_solve = _large_solve_profile(large_table, large_workload)

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        commit = "unknown"

    report = {
        "benchmark": "galaxy-direct-simplex-bnb",
        "description": (
            "SIMPLEX-backend branch-and-bound over the Galaxy DIRECT workload "
            f"({args.rows} rows, queries {', '.join(_QUERIES)}); warm = basis "
            "reuse across the tree, cold = every node solved from scratch. "
            "matrix_form profiles constraint storage (model arrays + matrix "
            "form + shared simplex working matrix) against the PR 1 dense "
            "pipeline (coefficient dicts + dense matrices + per-solve dense "
            f"working matrix), at {args.rows} and {args.form_rows} rows."
        ),
        "commit": commit,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "machine": platform.machine(),
        "rows": args.rows,
        "seed": args.seed,
        "warm": warm,
        "cold": cold,
        "iteration_savings": round(
            1.0 - warm["simplex_iterations"] / max(1, cold["simplex_iterations"]), 4
        ),
        "matrix_form": {
            "rows": args.rows,
            **storage,
        },
        "matrix_form_large": {
            "rows": args.form_rows,
            **large_storage,
        },
        "presolve": {
            # Solve ablation at --rows; root-LP reduction profile at the
            # --form-rows DIRECT instance (where column elimination matters).
            "rows": args.rows,
            "solve": presolve_solves,
            "root_reduction_large": {
                "rows": args.form_rows,
                "per_query": presolve_root_large,
            },
        },
        "pricing_ablation": {
            "rows": args.rows,
            **pricing,
        },
        "large_solve": {
            "rows": args.form_rows,
            **large_solve,
        },
        "peak_rss_bytes": _peak_rss_bytes(),
    }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    print(
        f"warm: {warm['nodes_per_second']} nodes/s, hit rate "
        f"{warm['warm_start_hit_rate']:.0%}, {warm['simplex_iterations']} pivots"
    )
    print(
        f"cold: {cold['nodes_per_second']} nodes/s, {cold['simplex_iterations']} pivots"
    )
    print(
        f"storage @{args.form_rows} rows: {large_storage['nnz']} nnz, "
        f"{large_storage['constraint_storage_bytes']:,} bytes vs dense baseline "
        f"{large_storage['dense_baseline_bytes']:,} "
        f"({large_storage['reduction_vs_dense_baseline']:.0%} smaller)"
    )
    probe = presolve_root_large["PRESOLVE_PROBE"]
    print(
        f"presolve @{args.form_rows} rows (probe): "
        f"{probe['columns']} -> {probe.get('columns_after', 0)} columns, "
        f"{probe['rows']} -> {probe.get('rows_after', 0)} rows in "
        f"{probe['presolve_ms']:.1f} ms; objectives match: "
        f"{presolve_solves['objectives_match']}"
    )
    pivot_line = ", ".join(
        f"{rule.value} {pricing[rule.value]['simplex_iterations']}"
        for rule in _PRICING_RULES
    )
    print(
        f"pricing ablation @{args.rows} rows: pivots {pivot_line}; "
        f"objectives match: {pricing['objectives_match']}"
    )
    devex_large = large_solve["devex"]
    print(
        f"large solve @{args.form_rows} rows: devex "
        f"{devex_large['nodes_per_second']} nodes/s, "
        f"{devex_large['simplex_iterations']} pivots "
        f"(dantzig {large_solve['dantzig']['simplex_iterations']}); "
        f"objectives match: {large_solve['objectives_match']}"
    )
    rss = report["peak_rss_bytes"]
    if rss:
        print(f"peak RSS: {rss / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
