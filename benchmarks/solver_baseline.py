#!/usr/bin/env python3
"""Record a solver-performance baseline as ``BENCH_solver.json``.

Runs the Galaxy DIRECT workload through the SIMPLEX-backend branch-and-bound
twice — once with basis reuse (warm starts) and once forced cold — and records
node throughput, LP iteration counts and the warm-start hit rate.  The JSON
is committed in-repo so future performance PRs have a trajectory to compare
against, and CI re-generates it as a build artifact on every push.

Run with::

    PYTHONPATH=src python benchmarks/solver_baseline.py [--rows 800] [--out BENCH_solver.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import time
from pathlib import Path

from repro.core.translator import translate_query
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.lp_backend import LpBackend
from repro.workloads.galaxy import galaxy_table, galaxy_workload

#: Queries solved per configuration; Q1 branches (fractional LP relaxations),
#: Q5 solves at the root, giving both tree shapes a voice in the baseline.
_QUERIES = ("Q1", "Q5")


def _run_configuration(table, workload, warm_start_lp: bool) -> dict:
    totals = {
        "nodes_explored": 0,
        "lp_solves": 0,
        "simplex_iterations": 0,
        "warm_start_hits": 0,
    }
    per_query = {}
    started = time.perf_counter()
    for name in _QUERIES:
        query = workload.query(name).query
        translation = translate_query(table, query)
        solver = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-3, node_limit=2000),
            lp_backend=LpBackend.SIMPLEX,
            warm_start_lp=warm_start_lp,
        )
        solution = solver.solve(translation.model)
        stats = solution.stats
        per_query[name] = {
            "status": solution.status.value,
            "objective": None if solution.objective_value != solution.objective_value
            else solution.objective_value,
            "nodes_explored": stats.nodes_explored,
            "lp_solves": stats.lp_solves,
            "simplex_iterations": stats.simplex_iterations,
            "warm_start_hits": stats.warm_start_hits,
        }
        for key in totals:
            totals[key] += getattr(stats, key)
    elapsed = time.perf_counter() - started
    return {
        "wall_seconds": round(elapsed, 4),
        "nodes_per_second": round(totals["nodes_explored"] / elapsed, 1),
        "warm_start_hit_rate": round(
            totals["warm_start_hits"] / max(1, totals["lp_solves"]), 4
        ),
        **totals,
        "per_query": per_query,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=800, help="Galaxy table size")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="BENCH_solver.json", help="output path")
    args = parser.parse_args()

    table = galaxy_table(args.rows, seed=args.seed)
    workload = galaxy_workload(table, seed=args.seed)

    warm = _run_configuration(table, workload, warm_start_lp=True)
    cold = _run_configuration(table, workload, warm_start_lp=False)

    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        commit = "unknown"

    report = {
        "benchmark": "galaxy-direct-simplex-bnb",
        "description": (
            "SIMPLEX-backend branch-and-bound over the Galaxy DIRECT workload "
            f"({args.rows} rows, queries {', '.join(_QUERIES)}); warm = basis "
            "reuse across the tree, cold = every node solved from scratch."
        ),
        "commit": commit,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": args.rows,
        "seed": args.seed,
        "warm": warm,
        "cold": cold,
        "iteration_savings": round(
            1.0 - warm["simplex_iterations"] / max(1, cold["simplex_iterations"]), 4
        ),
    }

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    print(
        f"warm: {warm['nodes_per_second']} nodes/s, hit rate "
        f"{warm['warm_start_hit_rate']:.0%}, {warm['simplex_iterations']} pivots"
    )
    print(
        f"cold: {cold['nodes_per_second']} nodes/s, {cold['simplex_iterations']} pivots"
    )


if __name__ == "__main__":
    main()
