"""Figure 1: naïve SQL self-join formulation vs ILP formulation.

The paper shows the SQL-style evaluation exploding exponentially with the
package cardinality while the ILP formulation stays flat.  The benchmark
regenerates the two runtime series and asserts the qualitative shape: the
self-join baseline degrades super-linearly and is eventually slower than the
ILP route by a wide margin.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import figure1_sql_vs_ilp
from repro.bench.reporting import render_table


@pytest.mark.benchmark(group="figure1")
def test_figure1_sql_vs_ilp(benchmark, quick_config):
    result = benchmark.pedantic(
        figure1_sql_vs_ilp,
        kwargs={"num_tuples": 60, "cardinalities": (1, 2, 3, 4), "config": quick_config},
        rounds=1,
        iterations=1,
    )
    rows = result.tables["figure1_rows"]
    print()
    print(render_table(rows, title="Figure 1 — runtime vs package cardinality"))

    naive = {r["cardinality"]: r["seconds"] for r in rows if r["method"] == "SQL self-join" and not r["failed"]}
    ilp = {r["cardinality"]: r["seconds"] for r in rows if r["method"] == "ILP formulation" and not r["failed"]}
    assert naive and ilp

    # The self-join runtime must grow much faster than the ILP runtime: at the
    # largest common cardinality the SQL plan should be at least 10x slower.
    largest = max(set(naive) & set(ilp))
    assert naive[largest] > 10 * ilp[largest]
    # ...and the SQL plan's own growth from k=1 to the largest k must be
    # super-linear (the paper's exponential blow-up).
    assert naive[largest] > 20 * max(naive[1], 1e-4)
