#!/usr/bin/env python3
"""Record the parallel-refine baseline as ``BENCH_parallel.json``.

Measures what the worker-pool solve plane buys on the refine phase of a
Galaxy-style query over the 20k-row synthetic Galaxy table.  The query is
shaped so the sketch spreads over many groups (its cardinality exceeds the
per-group size cap several times over), giving the refine phase a batch of
independent per-group ILPs to fan out:

* **refine sweep** — the same query runs at 1, 2, 4 and 8 workers (best of
  ``--repeats`` runs each); the answer package and objective must be
  identical at every worker count (the deterministic-merge contract), and
  the JSON records the refine wall time, speedup over serial, and the
  plane's own accounting (pool wall, in-worker solve time, merge wait);
* **seed fan-out** — a batch of differential-style seeded DIRECT solves runs
  through the same :class:`SolvePool`, serial vs parallel, with bit-equal
  results required.

The JSON is committed in-repo for a trajectory across PRs; CI re-generates
it on a multi-core runner and asserts a >= 1.5x refine speedup at 4 workers.
On a single-core machine the sweep still runs (and still must be
bit-identical) but the speedup hovers around 1x — the committed file records
``cpus`` so readers can tell which regime produced it.

Run with::

    PYTHONPATH=src python benchmarks/parallel_refine.py [--rows 20000] [--out BENCH_parallel.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.engine import PackageQueryEngine
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.exec.pool import SolvePool
from repro.paql.builder import query_over
from repro.workloads.galaxy import galaxy_table

ATTRIBUTES = ["petroMag_r", "redshift", "petroFlux_r"]
WORKER_COUNTS = (1, 2, 4, 8)


def _build_query(table, cardinality: int):
    """A Galaxy Q1-style query whose answer must straddle many groups.

    ``cardinality`` tuples with NO REPETITION and a per-group size cap of τ
    force the sketch to pick from at least ``cardinality / τ`` groups — that
    is the refine batch the pool fans out.
    """
    mean_z = float(np.mean(table.numeric_column("redshift")))
    mean_mag = float(np.mean(table.numeric_column("petroMag_r")))
    return (
        query_over("galaxy", name="galaxy_parallel_q1")
        .no_repetition()
        .count_equals(cardinality)
        .sum_between(
            "redshift", 0.7 * mean_z * cardinality, 1.3 * mean_z * cardinality
        )
        .sum_between(
            "petroMag_r", 0.9 * mean_mag * cardinality, 1.1 * mean_mag * cardinality
        )
        .maximize_sum("petroFlux_r")
        .build()
    )


def _refine_run(engine, query, workers: int):
    """One bypass execution; returns (package_map, objective, stats)."""
    result = engine.execute(
        query, method="sketchrefine", cache="bypass", workers=workers
    )
    stats = engine._sketchrefine.last_stats
    return result.package.as_multiplicity_map(), result.objective, stats


def run_seed(seed: int) -> tuple[int, float]:
    """One differential-style seeded DIRECT solve (the fan-out work unit)."""
    rng = np.random.default_rng(1_000_003 * (seed + 1))
    num_rows = int(rng.integers(40, 60))
    table = Table(
        Schema.numeric(["a", "b"]),
        {
            "a": rng.integers(0, 21, num_rows).astype(np.float64),
            "b": rng.integers(0, 21, num_rows).astype(np.float64),
        },
        name="diff",
    )
    engine = PackageQueryEngine()
    engine.register_table(table, name="diff")
    query = (
        query_over("diff")
        .no_repetition()
        .count_equals(int(rng.integers(3, 6)))
        .sum_at_most("b", float(np.sort(table.numeric_column("b"))[:8].sum()) * 1.4)
        .maximize_sum("a")
        .build()
    )
    result = engine.execute(query, method="direct", cache="bypass")
    return seed, result.objective


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--tau", type=int, default=250)
    parser.add_argument("--cardinality", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--fanout-seeds", type=int, default=24)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args()

    table = galaxy_table(args.rows, seed=args.seed)
    engine = PackageQueryEngine()
    engine.register_table(table, name="galaxy")
    engine.build_partitioning("galaxy", ATTRIBUTES, size_threshold=args.tau)
    query = _build_query(table, args.cardinality)

    # ---- refine sweep across worker counts ----------------------------------------
    reference_package = None
    reference_objective = None
    objectives_match = True
    sweep: dict[str, dict] = {}
    for workers in WORKER_COUNTS:
        best = None
        for _ in range(args.repeats):
            package, objective, stats = _refine_run(engine, query, workers)
            if best is None or stats.refine_seconds < best[2].refine_seconds:
                best = (package, objective, stats)
        package, objective, stats = best
        if reference_package is None:
            reference_package, reference_objective = package, objective
        elif package != reference_package or objective != reference_objective:
            objectives_match = False
        sweep[str(workers)] = {
            "refine_seconds": round(stats.refine_seconds, 6),
            "total_seconds": round(stats.total_seconds, 6),
            "refine_queries": stats.refine_queries,
            "refine_rounds": stats.refine_rounds,
            "merge_deferrals": stats.merge_deferrals,
            "refine_parallel_tasks": stats.refine_parallel_tasks,
            "pool_wall_ms": round(stats.pool_wall_ms, 3),
            "merge_wait_ms": round(stats.merge_wait_ms, 3),
            "child_solve_ms": round(stats.child_solve_ms, 3),
        }
        print(
            f"workers={workers}: refine {stats.refine_seconds * 1e3:.1f} ms "
            f"({stats.refine_queries} refine ILPs, "
            f"{stats.refine_parallel_tasks} in workers), "
            f"objective {objective:.3f}"
        )
    serial_refine = sweep["1"]["refine_seconds"]
    refine_speedup = {
        w: round(serial_refine / entry["refine_seconds"], 3)
        if entry["refine_seconds"] > 0
        else float("inf")
        for w, entry in sweep.items()
    }
    print(f"refine speedup vs serial: {refine_speedup} (cpus={os.cpu_count()})")
    assert objectives_match, "parallel refine diverged from the serial answer"
    assert sweep["1"]["refine_queries"] >= 8, (
        "workload too small to exercise the pool: "
        f"only {sweep['1']['refine_queries']} refine ILPs"
    )

    # ---- seed fan-out through the same pool ----------------------------------------
    seeds = list(range(args.fanout_seeds))
    started = time.perf_counter()
    serial_results = SolvePool(1).map(run_seed, seeds)
    fanout_serial_seconds = time.perf_counter() - started
    with SolvePool(4) as pool:
        started = time.perf_counter()
        parallel_results = pool.map(run_seed, seeds)
        fanout_parallel_seconds = time.perf_counter() - started
    fanout_match = serial_results == parallel_results
    fanout_speedup = (
        fanout_serial_seconds / fanout_parallel_seconds
        if fanout_parallel_seconds > 0
        else float("inf")
    )
    print(
        f"seed fan-out x{len(seeds)}: serial {fanout_serial_seconds * 1e3:.1f} ms, "
        f"4 workers {fanout_parallel_seconds * 1e3:.1f} ms "
        f"({fanout_speedup:.2f}x), results match: {fanout_match}"
    )
    assert fanout_match, "parallel seed fan-out diverged from serial results"

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "rows": args.rows,
        "tau": args.tau,
        "cardinality": args.cardinality,
        "seed": args.seed,
        "repeats": args.repeats,
        "query": (
            f"no-repetition count={args.cardinality}, sum(redshift) window, "
            "maximize sum(petroFlux_r)"
        ),
        "objective": reference_objective,
        "objectives_match": objectives_match,
        "refine": sweep,
        "refine_speedup": refine_speedup,
        "seed_fanout": {
            "num_seeds": len(seeds),
            "serial_seconds": round(fanout_serial_seconds, 6),
            "parallel_seconds": round(fanout_parallel_seconds, 6),
            "speedup": round(fanout_speedup, 3),
            "results_match": fanout_match,
        },
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
