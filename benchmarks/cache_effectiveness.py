#!/usr/bin/env python3
"""Record the result-cache baseline as ``BENCH_cache.json``.

Measures what delta-aware caching buys on an update-then-requery workload
over the 20k-row synthetic Galaxy table:

* **cold vs hot** — one SKETCHREFINE solve of a Galaxy-style query, then the
  same query again: the second execution must be served from the cache ≥ 10x
  faster than the cold solve (in practice several orders of magnitude);
* **revalidation** — an insert delta aimed at groups the cached package does
  *not* touch: the cached answer must be *revalidated* (cheap feasibility
  re-check, no ILP solve) rather than invalidated;
* **invalidation** — a delta deleting one of the package's own tuples must
  force a fresh solve (a stale answer is never served);
* **steady state** — an update-then-requery loop with deltas aimed away from
  the hot query's groups, reporting the fraction of executions served
  without a solve.

The JSON is committed in-repo for a trajectory across PRs; CI re-generates
it and asserts the ≥ 10x speedup and the revalidation behaviour.

Run with::

    PYTHONPATH=src python benchmarks/cache_effectiveness.py [--rows 20000] [--out BENCH_cache.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.engine import PackageQueryEngine
from repro.paql.builder import query_over
from repro.partition.maintenance import PartitionMaintainer
from repro.workloads.galaxy import galaxy_table

ATTRIBUTES = ["petroMag_r", "redshift", "petroFlux_r"]


def _build_query(table):
    """A Galaxy Q1-style query: bounded total redshift, maximise total flux."""
    mean_z = float(np.mean(table.numeric_column("redshift")))
    return (
        query_over("galaxy", name="galaxy_cache_q1")
        .no_repetition()
        .count_equals(10)
        .sum_between("redshift", 0.65 * mean_z * 10, 1.35 * mean_z * 10)
        .maximize_sum("petroFlux_r")
        .build()
    )


def _timed_execute(engine, query, **kwargs):
    started = time.perf_counter()
    result = engine.execute(query, **kwargs)
    return time.perf_counter() - started, result


def _miss_delta_rows(engine, package_groups, count, forbidden=()):
    """Rows whose insertion provably misses ``package_groups``.

    Copies tuples from small non-package groups (a copy lands on its own
    group's centroid, so nearest-centroid assignment keeps it there) and
    verifies the predicted assignment with the maintainer's own preview.
    """
    partitioning = engine.database.partitioning("galaxy")
    maintainer = engine.database.maintainer
    tau = partitioning.stats.size_threshold
    sizes = partitioning.group_sizes()
    donors = [
        gid
        for gid in np.argsort(sizes)
        if gid not in package_groups and gid not in forbidden and sizes[gid] + count <= tau - 1
    ]
    for donor in donors:
        rows = partitioning.group_rows(int(donor))[:count]
        candidate = engine.table("galaxy").take(rows)
        predicted = set(maintainer.assign_rows(partitioning, candidate).tolist())
        if predicted and not (predicted & set(package_groups)):
            return candidate, predicted
    raise RuntimeError("no donor group found for a package-missing delta")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--tau", type=int, default=50)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--update-rounds", type=int, default=10)
    parser.add_argument("--out", default="BENCH_cache.json")
    args = parser.parse_args()

    table = galaxy_table(args.rows, seed=args.seed)
    engine = PackageQueryEngine()
    engine.register_table(table, name="galaxy")
    engine.build_partitioning("galaxy", ATTRIBUTES, size_threshold=args.tau)
    query = _build_query(table)

    # ---- cold solve vs cached re-execution --------------------------------------
    cold_seconds, cold = _timed_execute(engine, query, method="sketchrefine", cache="refresh")
    hot_seconds, hot = _timed_execute(engine, query, method="sketchrefine")
    speedup = cold_seconds / hot_seconds if hot_seconds > 0 else float("inf")
    assert hot.details["cache"]["status"] == "hit", hot.details["cache"]["status"]
    assert hot.objective == cold.objective
    print(
        f"cold solve {cold_seconds * 1e3:.1f} ms vs cached {hot_seconds * 1e3:.3f} ms "
        f"({speedup:.0f}x), objective {cold.objective:.3f}"
    )

    partitioning = engine.database.partitioning("galaxy")
    package_groups = frozenset(partitioning.group_ids[cold.package.indices].tolist())

    # ---- delta missing the package's groups: revalidate, don't re-solve -----------
    inserted, predicted = _miss_delta_rows(engine, package_groups, count=3)
    update = engine.update_table("galaxy", insert=inserted)
    stats = update.maintained["default"]
    assert not (stats.touched_groups & package_groups)
    assert not stats.groups_renumbered
    revalidate_seconds, revalidated = _timed_execute(engine, query, method="sketchrefine")
    revalidate_status = revalidated.details["cache"]["status"]
    assert revalidated.objective == cold.objective
    print(
        f"delta into groups {sorted(predicted)} (package groups "
        f"{sorted(package_groups)}): {revalidate_status} in "
        f"{revalidate_seconds * 1e3:.3f} ms"
    )

    # ---- delta touching the package: must re-solve -------------------------------
    victim = int(revalidated.package.indices[0])
    engine.update_table("galaxy", delete=[victim])
    resolve_seconds, resolved = _timed_execute(engine, query, method="sketchrefine")
    touch_status = resolved.details["cache"]["status"]
    print(f"delta deleting a package tuple: {touch_status} in {resolve_seconds * 1e3:.1f} ms")

    # ---- steady-state update-then-requery loop -------------------------------------
    served_without_solve = 0
    loop_statuses: list[str] = []
    for _ in range(args.update_rounds):
        current = engine.database.partitioning("galaxy")
        current_groups = frozenset(current.group_ids[resolved.package.indices].tolist())
        inserted, _ = _miss_delta_rows(engine, current_groups, count=2)
        engine.update_table("galaxy", insert=inserted)
        _, resolved = _timed_execute(engine, query, method="sketchrefine")
        status = resolved.details["cache"]["status"]
        loop_statuses.append(status)
        if status in ("hit", "revalidated"):
            served_without_solve += 1
    hit_rate = served_without_solve / args.update_rounds
    print(
        f"update-then-requery x{args.update_rounds}: {served_without_solve} served "
        f"without a solve (rate {hit_rate:.2f})"
    )

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": args.rows,
        "tau": args.tau,
        "seed": args.seed,
        "query": "count=10, sum(redshift) window, maximize sum(petroFlux_r)",
        "cold_seconds": round(cold_seconds, 6),
        "hot_seconds": round(hot_seconds, 6),
        "speedup": round(speedup, 1),
        "revalidate_seconds": round(revalidate_seconds, 6),
        "revalidate_status": revalidate_status,
        "touch_delta_status": touch_status,
        "resolve_seconds": round(resolve_seconds, 6),
        "update_rounds": args.update_rounds,
        "loop_statuses": loop_statuses,
        "served_without_solve": served_without_solve,
        "hit_rate": round(hit_rate, 3),
        "cache_stats": engine.cache.stats_snapshot(),
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
