"""Ablation benchmarks beyond the paper's numbered figures.

* **Radius ablation** (Section 5.2.1 text): the one TPC-H query with a poor
  approximation ratio under size-threshold-only partitioning recovers a
  near-perfect ratio when the partitioning enforces the ε-derived radius limit.
* **Approximation-bound study** (Theorem 3): with a radius limit from
  Equation (1), the observed ratio respects the (1±ε)^6 guarantee.
* **Partitioner comparison** (Section 4.1 discussion): quad-tree vs k-d tree
  vs k-means — the clustering alternative cannot natively honour τ, which is
  why the paper settles on space-partitioning indexes.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import (
    approximation_bound_study,
    partitioner_comparison,
    radius_ablation,
)
from repro.bench.reporting import render_table
from repro.paql.ast import ObjectiveDirection


@pytest.mark.benchmark(group="ablation-radius")
def test_radius_limited_partitioning_restores_quality(benchmark, quick_config):
    result = benchmark.pedantic(
        radius_ablation,
        kwargs={"config": quick_config, "dataset": "tpch", "query_name": "Q2", "epsilon": 1.0},
        rounds=1,
        iterations=1,
    )
    rows = result.tables["radius_rows"]
    print()
    print(render_table(rows, title="Radius ablation — TPC-H Q2 (minimisation)"))

    by_configuration = {row["configuration"]: row for row in rows}
    direct = by_configuration["none"]
    radius = by_configuration["radius(eps=1.0)"]
    assert not direct["failed"] and not radius["failed"]
    # With the radius limit in place the minimisation objective is within the
    # theoretical (1+ε)^6 factor of DIRECT (and empirically much closer).
    assert radius["objective"] <= direct["objective"] * (1.0 + 1.0) ** 6 + 1e-6


@pytest.mark.benchmark(group="ablation-bounds")
def test_approximation_bound_holds(benchmark, quick_config):
    result = benchmark.pedantic(
        approximation_bound_study,
        kwargs={"config": quick_config, "epsilons": (0.1, 0.3), "num_rows": 300},
        rounds=1,
        iterations=1,
    )
    rows = result.tables["bound_rows"]
    print()
    print(render_table(rows, title="Theorem 3 — empirical (1±ε)^6 bound check"))

    for row in rows:
        if row["within_bound"] is not None:
            assert row["within_bound"], f"bound violated at epsilon={row['epsilon']}"


@pytest.mark.benchmark(group="ablation-partitioners")
def test_partitioner_comparison(benchmark, quick_config):
    result = benchmark.pedantic(
        partitioner_comparison,
        kwargs={"config": quick_config, "num_rows": 400},
        rounds=1,
        iterations=1,
    )
    rows = result.tables["partitioner_rows"]
    print()
    print(render_table(rows, title="Partitioner comparison (quad-tree / k-d tree / k-means)"))

    by_name = {row["partitioner"]: row for row in rows}
    assert set(by_name) == {"quadtree", "kdtree", "kmeans"}
    # The space-partitioning methods must honour the size threshold natively.
    assert by_name["quadtree"]["satisfies_tau"]
    assert by_name["kdtree"]["satisfies_tau"]
    # All three produce usable partitionings for SKETCHREFINE.
    for row in rows:
        assert not math.isnan(row["approx_ratio"]) or row["query_seconds"] > 0
