"""Figure 9: effect of partitioning coverage on SKETCHREFINE's runtime.

Coverage is (number of partitioning attributes) / (number of query
attributes).  The paper finds that partitioning on a superset of the query
attributes (coverage > 1) keeps or improves performance, while partitioning on
a strict subset (coverage < 1) tends to slow queries down — which is what
makes a single offline partitioning on the workload (or all) attributes a safe
default.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import figure9_coverage
from repro.bench.reporting import render_table


@pytest.mark.benchmark(group="figure9")
@pytest.mark.parametrize("dataset,query_name", [("galaxy", "Q5"), ("tpch", "Q3")])
def test_figure9_partitioning_coverage(benchmark, quick_config, dataset, query_name):
    result = benchmark.pedantic(
        figure9_coverage,
        kwargs={
            "config": quick_config,
            "dataset": dataset,
            "query_name": query_name,
            "coverages": (0.5, 1.0, 2.0, 4.0) if dataset == "galaxy" else (0.5, 1.0, 2.0),
        },
        rounds=1,
        iterations=1,
    )
    rows = result.tables["figure9_rows"]
    print()
    print(render_table(rows, title=f"Figure 9 — coverage sweep ({dataset} {query_name})"))

    assert all(not row["failed"] for row in rows)
    by_coverage = {row["coverage"]: row for row in rows}
    assert 1.0 in by_coverage

    # Robustness claim: partitioning on a superset of the query attributes
    # never makes the query catastrophically slower than coverage 1 (the paper
    # reports it usually makes it faster; we allow noise at laptop scale).
    baseline = by_coverage[1.0]["seconds"]
    for coverage, row in by_coverage.items():
        if coverage >= 1.0 and baseline > 0:
            assert row["seconds"] / baseline < 10.0
