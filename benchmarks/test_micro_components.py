"""Micro-benchmarks of the individual substrates.

Not a paper artefact, but useful for tracking the cost of each pipeline stage
independently: PaQL parsing, PaQL→ILP translation, base-relation filtering,
LP relaxation solving, full ILP solving, quad-tree partitioning and the
SKETCH phase on its own.  These run as normal repeated pytest-benchmark
measurements (unlike the figure drivers, which run once).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base_relations import compute_base_relation
from repro.core.direct import DirectEvaluator
from repro.core.translator import translate_query
from repro.db.expressions import col
from repro.ilp.branch_and_bound import BranchAndBoundSolver, SolverLimits
from repro.ilp.lp_backend import LpBackend, WarmStart, solve_lp, solve_lp_dense
from repro.paql.parser import parse_paql
from repro.partition.quadtree import QuadTreePartitioner
from repro.workloads.galaxy import galaxy_table, galaxy_workload
from repro.workloads.recipes import MEAL_PLANNER_PAQL, recipes_table


@pytest.fixture(scope="module")
def galaxy_fixture():
    table = galaxy_table(800, seed=42)
    workload = galaxy_workload(table, seed=42)
    return table, workload


@pytest.mark.benchmark(group="micro-paql")
def test_parse_paql_speed(benchmark):
    query = benchmark(parse_paql, MEAL_PLANNER_PAQL)
    assert query.relation == "recipes"


@pytest.mark.benchmark(group="micro-translate")
def test_translate_query_speed(benchmark, galaxy_fixture):
    table, workload = galaxy_fixture
    query = workload.query("Q1").query
    translation = benchmark(translate_query, table, query)
    assert translation.num_variables == table.num_rows


@pytest.mark.benchmark(group="micro-base-relation")
def test_base_relation_speed(benchmark):
    table = recipes_table(2000, seed=3)
    query = parse_paql(MEAL_PLANNER_PAQL)
    base = benchmark(compute_base_relation, table, query)
    assert 0 < base.num_eligible < table.num_rows


@pytest.mark.benchmark(group="micro-lp")
def test_lp_relaxation_speed(benchmark, galaxy_fixture):
    table, workload = galaxy_fixture
    translation = translate_query(table, workload.query("Q5").query)
    solution = benchmark(solve_lp, translation.model)
    assert solution.has_solution


@pytest.mark.benchmark(group="micro-ilp")
def test_ilp_solve_speed(benchmark, galaxy_fixture):
    table, workload = galaxy_fixture
    query = workload.query("Q5").query
    solver = BranchAndBoundSolver(limits=SolverLimits(relative_gap=1e-3, node_limit=2000))
    evaluator = DirectEvaluator(solver=solver)
    package = benchmark.pedantic(
        evaluator.evaluate, args=(table, query), rounds=3, iterations=1
    )
    assert package.cardinality == 3


@pytest.mark.benchmark(group="micro-lp-cold-vs-warm")
def test_lp_cold_solve_speed_simplex(benchmark, galaxy_fixture):
    """Cold revised-simplex solve of a branch-and-bound child LP."""
    table, workload = galaxy_fixture
    translation = translate_query(table, workload.query("Q1").query)
    dense = translation.model.to_dense()
    parent = solve_lp_dense(dense, LpBackend.SIMPLEX)
    assert parent.status.has_solution
    lower, upper = dense.bound_arrays()
    branch = int(np.argmax(np.abs(parent.values - np.rint(parent.values))))
    child_upper = upper.copy()
    child_upper[branch] = np.floor(parent.values[branch])
    child = dense.with_bounds(lower, child_upper)

    result = benchmark(solve_lp_dense, child, LpBackend.SIMPLEX)
    assert result.status.has_solution
    assert not result.warm_start_used


@pytest.mark.benchmark(group="micro-lp-cold-vs-warm")
def test_lp_warm_reoptimisation_speed_simplex(benchmark, galaxy_fixture):
    """The same child LP, reoptimised from the parent basis (dual simplex)."""
    table, workload = galaxy_fixture
    translation = translate_query(table, workload.query("Q1").query)
    dense = translation.model.to_dense()
    parent = solve_lp_dense(dense, LpBackend.SIMPLEX)
    assert parent.status.has_solution
    lower, upper = dense.bound_arrays()
    branch = int(np.argmax(np.abs(parent.values - np.rint(parent.values))))
    child_upper = upper.copy()
    child_upper[branch] = np.floor(parent.values[branch])
    child = dense.with_bounds(lower, child_upper)
    warm = WarmStart(basis=parent.basis)

    result = benchmark(solve_lp_dense, child, LpBackend.SIMPLEX, warm)
    assert result.status.has_solution
    assert result.warm_start_used


@pytest.mark.benchmark(group="micro-ilp-simplex-warm")
def test_ilp_simplex_backend_with_basis_reuse(benchmark, galaxy_fixture):
    """Full SIMPLEX-backend branch and bound with warm-started node LPs."""
    table, workload = galaxy_fixture
    translation = translate_query(table, workload.query("Q1").query)

    def solve():
        solver = BranchAndBoundSolver(
            limits=SolverLimits(relative_gap=1e-3, node_limit=2000),
            lp_backend=LpBackend.SIMPLEX,
        )
        return solver.solve(translation.model)

    solution = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert solution.has_solution
    if solution.stats.lp_solves > 1:
        assert solution.stats.warm_start_rate >= 0.7


@pytest.mark.benchmark(group="micro-partition")
def test_quadtree_partitioning_speed(benchmark, galaxy_fixture):
    table, workload = galaxy_fixture
    partitioner = QuadTreePartitioner(size_threshold=max(1, table.num_rows // 10))
    partitioning = benchmark.pedantic(
        partitioner.partition, args=(table, workload.workload_attributes), rounds=3, iterations=1
    )
    assert partitioning.satisfies_size_threshold(max(1, table.num_rows // 10))


@pytest.mark.benchmark(group="micro-expressions")
def test_predicate_evaluation_speed(benchmark):
    table = recipes_table(5000, seed=3)
    predicate = (col("gluten") == "free") & (col("kcal") < 1.0) & (col("protein") >= 10)
    mask = benchmark(predicate.evaluate, table)
    assert mask.dtype == np.bool_
