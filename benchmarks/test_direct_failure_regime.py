"""DIRECT failure regime (the missing data points of Figure 5).

In the paper, DIRECT fails on several Galaxy queries when CPLEX exhausts the
available memory, while SKETCHREFINE keeps answering because each of its
sub-problems stays small.  The solver substrate reproduces that regime with a
variable-capacity limit: this benchmark runs both methods against a capped
solver and checks that DIRECT fails where SKETCHREFINE succeeds.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchmarkConfig, build_partitioning, run_method
from repro.bench.reporting import render_table
from repro.workloads.galaxy import galaxy_table, galaxy_workload


@pytest.mark.benchmark(group="direct-failure")
def test_direct_fails_where_sketchrefine_succeeds(benchmark, quick_config):
    def run() -> list[dict]:
        table = galaxy_table(quick_config.galaxy_rows, seed=quick_config.seed)
        workload = galaxy_workload(table, seed=quick_config.seed)
        # Capacity-limited solver for DIRECT only: the problem (one variable per
        # tuple) exceeds the cap, as CPLEX's memory ceiling does in the paper.
        capped = BenchmarkConfig(
            galaxy_rows=quick_config.galaxy_rows,
            seed=quick_config.seed,
            solver_time_limit=quick_config.solver_time_limit,
            solver_node_limit=quick_config.solver_node_limit,
            direct_max_variables=quick_config.galaxy_rows // 2,
        )
        partitioning = build_partitioning(table, workload.workload_attributes, quick_config)
        rows = []
        for name in ("Q1", "Q5"):
            workload_query = workload.query(name)
            direct_run = run_method(table, workload_query, "direct", "galaxy", capped)
            # SKETCHREFINE runs against the SAME capacity-limited solver: its
            # sub-problems (one group at a time) stay under the cap.
            sketch_run = run_method(
                table, workload_query, "sketchrefine", "galaxy", capped,
                partitioning=partitioning,
            )
            rows.append(
                {
                    "query": name,
                    "direct": "FAIL (capacity)" if direct_run.failed else f"{direct_run.wall_seconds:.2f}s",
                    "sketchrefine": "FAIL" if sketch_run.failed else f"{sketch_run.wall_seconds:.2f}s",
                    "direct_failed": direct_run.failed,
                    "sketch_failed": sketch_run.failed,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(rows, title="DIRECT failure regime (capacity-limited solver)"))
    for row in rows:
        assert row["direct_failed"], "DIRECT should exceed the capacity limit"
        assert not row["sketch_failed"], "SKETCHREFINE sub-problems stay within capacity"
