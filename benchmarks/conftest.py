"""Shared configuration for the benchmark suite.

Every benchmark regenerates one artefact (figure or table) of the paper's
evaluation section at laptop scale.  The shared :class:`BenchmarkConfig`
keeps the dataset sizes small enough for the whole suite to run in minutes
while preserving the shapes the paper reports; EXPERIMENTS.md documents the
full-scale settings and results.

Set the environment variable ``REPRO_BENCH_SCALE`` to a float (default 1.0)
to scale the dataset sizes up or down, e.g.::

    REPRO_BENCH_SCALE=4 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import BenchmarkConfig


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


@pytest.fixture(scope="session")
def bench_config() -> BenchmarkConfig:
    """Benchmark configuration shared by every experiment driver."""
    scale = _scale()
    return BenchmarkConfig(
        galaxy_rows=max(200, int(800 * scale)),
        tpch_rows=max(200, int(1000 * scale)),
        seed=42,
        solver_time_limit=30.0,
        solver_node_limit=3_000,
        solver_relative_gap=1e-3,
        fractions=(0.10, 0.40, 0.70, 1.00),
    )


@pytest.fixture(scope="session")
def quick_config() -> BenchmarkConfig:
    """Smaller configuration for the heavier sweep experiments."""
    scale = _scale()
    return BenchmarkConfig(
        galaxy_rows=max(150, int(500 * scale)),
        tpch_rows=max(150, int(600 * scale)),
        seed=42,
        solver_time_limit=20.0,
        solver_node_limit=2_000,
        solver_relative_gap=1e-3,
        fractions=(0.25, 1.00),
    )
