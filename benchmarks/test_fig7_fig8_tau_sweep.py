"""Figures 7 and 8: impact of the partition size threshold τ on SKETCHREFINE.

The paper sweeps τ from a few large partitions to many small ones and finds a
"sweet spot": extreme values of τ (either end) make SKETCHREFINE no better —
or worse — than DIRECT, while intermediate values give the order-of-magnitude
win, and the approximation ratio stays low throughout.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.experiments import figure7_galaxy_tau_sweep, figure8_tpch_tau_sweep
from repro.bench.reporting import render_series


_THRESHOLDS = (0.5, 0.25, 0.10, 0.04)


@pytest.mark.benchmark(group="figure7")
def test_figure7_galaxy_tau_sweep(benchmark, quick_config):
    result = benchmark.pedantic(
        figure7_galaxy_tau_sweep,
        kwargs={"config": quick_config, "fraction": 0.5, "thresholds": _THRESHOLDS},
        rounds=1,
        iterations=1,
    )
    _check_tau_sweep(result, "size_threshold")


@pytest.mark.benchmark(group="figure8")
def test_figure8_tpch_tau_sweep(benchmark, quick_config):
    result = benchmark.pedantic(
        figure8_tpch_tau_sweep,
        kwargs={"config": quick_config, "thresholds": _THRESHOLDS},
        rounds=1,
        iterations=1,
    )
    _check_tau_sweep(result, "size_threshold")


def _check_tau_sweep(result, parameter: str) -> None:
    print()
    for query_result in result.query_results:
        print(render_series(query_result, parameter))
        print()

    assert len(result.query_results) == 7
    ratios = []
    for query_result in result.query_results:
        sketch_runs = query_result.runs_for("sketchrefine")
        # Every τ value produces an answer.
        assert all(run.succeeded for run in sketch_runs), query_result.query_name
        # τ changes the runtime but not the ability to answer; collect ratios.
        ratio = query_result.mean_approximation_ratio()
        if not math.isnan(ratio):
            ratios.append(ratio)
    # The paper's observation: τ has a major impact on runtime but almost none
    # on quality — the mean approximation ratio stays small across the sweep.
    assert ratios
    assert sum(ratios) / len(ratios) < 9.0
